// Package storage materializes physical columns on simulated main-memory
// files and provides the low-level page layout and scan primitives that
// both the explicit-index baselines and the virtual storage views build on.
//
// Layout (§2): a column is a sequence of 4 KiB pages on a main-memory
// file. "As partial views might map to arbitrary subsets of the physical
// column, we have to embed an 8B pageID at the beginning of each physical
// page" — so every page starts with an 8-byte little-endian pageID that
// lets a partial-view scan identify which tuples the page's values belong
// to. We additionally reserve two 8-byte zone fields (the page's minimum
// and maximum value) in the header: the "Zone Map" baseline of §3.1 stores
// its metadata "in-place at the beginning of the page, before the actual
// values", and carrying the fields in the common layout lets every §3.1
// variant operate on the same column. The adaptive layer itself never
// reads the zones (a documented divergence: 509 instead of 511 values per
// page, see DESIGN.md §4).
package storage

import (
	"encoding/binary"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"github.com/asv-db/asv/internal/dist"
	"github.com/asv-db/asv/internal/vmsim"
)

const (
	// PageSize re-exports the simulator's page size.
	PageSize = vmsim.PageSize
	// HeaderSize is the embedded page header: 8-byte pageID (§2) plus the
	// 8-byte zone minimum and maximum used by the zone-map baseline (§3.1).
	HeaderSize = 24
	// ValuesPerPage is the number of 8-byte values per page after the
	// header: (4096-24)/8 = 509.
	ValuesPerPage = (PageSize - HeaderSize) / 8

	// MinParallelScanPages is the smallest scan for which page sharding
	// pays: below it, goroutine startup dominates the sub-µs per-page
	// filter and the serial loop wins even on many cores. Shared by every
	// parallel scan kernel (FullScanParallel here, the engine's routed
	// kernel in internal/core).
	MinParallelScanPages = 64
)

// PageID reads the embedded pageID header.
func PageID(page []byte) uint64 {
	return binary.LittleEndian.Uint64(page[:8])
}

// SetPageID writes the embedded pageID header.
func SetPageID(page []byte, id uint64) {
	binary.LittleEndian.PutUint64(page[:8], id)
}

// Zone reads the in-page zone fields: the smallest and largest value the
// page has ever held. Zones are maintained conservatively — overwrites
// only enlarge them — so they may overapproximate after updates, exactly
// like classical zone maps.
func Zone(page []byte) (min, max uint64) {
	return binary.LittleEndian.Uint64(page[8:16]), binary.LittleEndian.Uint64(page[16:24])
}

// SetZone writes the in-page zone fields.
func SetZone(page []byte, min, max uint64) {
	binary.LittleEndian.PutUint64(page[8:16], min)
	binary.LittleEndian.PutUint64(page[16:24], max)
}

// enlargeZone grows the zone to include v.
func enlargeZone(page []byte, v uint64) {
	min, max := Zone(page)
	if v < min {
		binary.LittleEndian.PutUint64(page[8:16], v)
	}
	if v > max {
		binary.LittleEndian.PutUint64(page[16:24], v)
	}
}

// ValueAt reads value slot i of a page (0 <= i < ValuesPerPage).
func ValueAt(page []byte, i int) uint64 {
	off := HeaderSize + i*8
	return binary.LittleEndian.Uint64(page[off : off+8])
}

// SetValueAt writes value slot i of a page.
func SetValueAt(page []byte, i int, v uint64) {
	off := HeaderSize + i*8
	binary.LittleEndian.PutUint64(page[off:off+8], v)
}

// PageScan is the result of filtering one page against a range predicate.
// Beyond the qualifying count and sum it reports the boundary values the
// adaptive layer needs for candidate-range extension (§2.2): the largest
// on-page value strictly below the predicate and the smallest strictly
// above it.
type PageScan struct {
	Count    int    // qualifying values
	Sum      uint64 // sum of qualifying values (wrapping; a checkable aggregate)
	MaxBelow uint64 // largest value < lo, valid if HasBelow
	MinAbove uint64 // smallest value > hi, valid if HasAbove
	HasBelow bool
	HasAbove bool
}

// Merge folds another PageScan into s — the shard reducer of the parallel
// scan kernels. Count and Sum add (wrapping addition is commutative and
// associative, so any shard order reduces to the serial result); the
// boundary observations keep the tightest value on each side.
func (s *PageScan) Merge(o PageScan) {
	s.Count += o.Count
	s.Sum += o.Sum
	if o.HasBelow && (!s.HasBelow || o.MaxBelow > s.MaxBelow) {
		s.MaxBelow = o.MaxBelow
		s.HasBelow = true
	}
	if o.HasAbove && (!s.HasAbove || o.MinAbove < s.MinAbove) {
		s.MinAbove = o.MinAbove
		s.HasAbove = true
	}
}

// ScanFilter scans all value slots of a page against [lo, hi] (inclusive).
func ScanFilter(page []byte, lo, hi uint64) PageScan {
	var s PageScan
	for i := 0; i < ValuesPerPage; i++ {
		v := binary.LittleEndian.Uint64(page[HeaderSize+i*8 : HeaderSize+i*8+8])
		switch {
		case v < lo:
			if !s.HasBelow || v > s.MaxBelow {
				s.MaxBelow = v
				s.HasBelow = true
			}
		case v > hi:
			if !s.HasAbove || v < s.MinAbove {
				s.MinAbove = v
				s.HasAbove = true
			}
		default:
			s.Count++
			s.Sum += v
		}
	}
	return s
}

// PageMinMax returns the smallest and largest value on the page (used to
// build zone maps).
func PageMinMax(page []byte) (min, max uint64) {
	min = ^uint64(0)
	for i := 0; i < ValuesPerPage; i++ {
		v := binary.LittleEndian.Uint64(page[HeaderSize+i*8 : HeaderSize+i*8+8])
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	return min, max
}

// CollectMatches calls emit(slot, value) for every qualifying slot of the
// page, for callers that materialize row results rather than aggregates.
func CollectMatches(page []byte, lo, hi uint64, emit func(slot int, v uint64)) {
	for i := 0; i < ValuesPerPage; i++ {
		v := binary.LittleEndian.Uint64(page[HeaderSize+i*8 : HeaderSize+i*8+8])
		if v >= lo && v <= hi {
			emit(i, v)
		}
	}
}

// Column is a physical column: numPages pages on a main-memory file, plus
// the always-present full virtual view v[-inf,inf] mapping the whole file
// in order (§2 component (a) and the first element of component (b)).
type Column struct {
	kernel   *vmsim.Kernel
	as       *vmsim.AddressSpace
	file     *vmsim.File
	name     string
	numPages int
	fullAddr vmsim.Addr

	// tlb caches the resolved page slice per full-view page. As with
	// view.View's soft-TLB, this models the hardware MMU/TLB: on the
	// paper's system a full-view access costs no software translation,
	// and charging one per page here would distort every scan-path
	// comparison (and serialize concurrent mapping against scanning on
	// the simulated page-table lock). NewColumn resolves every entry
	// while stamping pageIDs, so after construction PageBytes never
	// writes the cache — which is what lets concurrent scan workers share
	// a column without any locking.
	//
	// The array is held behind an atomic pointer because the snapshot
	// write path (see snapshot.go) hands the current array to published
	// engine states and installs a private clone before the next
	// copy-on-write shadow: a handed-out array is immutable from that
	// moment on, which is what makes epoch readers race-free against
	// writers. Without EnableSnapshots the pointer never changes after
	// construction.
	tlb atomic.Pointer[[][]byte]

	// Snapshot (copy-on-write) state; see snapshot.go. All fields are
	// inert until EnableSnapshots.
	snapMu      sync.Mutex // guards cloning, shadowing, and the retired list
	snapOn      bool
	snapEpoch   atomic.Uint64
	pageEpoch   []uint64 // per page: epoch of its last shadow copy
	cloneNeeded bool     // current tlb array was handed to a state; clone before shadowing
	retired     []vmsim.FrameID

	// tier is the column's second-tier frame map (EnableTiering); nil
	// keeps the single-tier behaviour. Tier state is keyed by file page —
	// the pageID embedded in the page bytes — so copy-on-write frame
	// replacement never loses a page's tier.
	tier atomic.Pointer[vmsim.FileTier]
}

// NewColumn creates the file, stamps every page's pageID header, and maps
// the full view.
func NewColumn(k *vmsim.Kernel, as *vmsim.AddressSpace, name string, numPages int) (*Column, error) {
	if numPages <= 0 {
		return nil, fmt.Errorf("storage: column needs at least one page, got %d", numPages)
	}
	f, err := k.CreateFile(name, numPages)
	if err != nil {
		return nil, err
	}
	addr, err := as.MmapFile(f, 0, numPages)
	if err != nil {
		_ = k.RemoveFile(name) //asv:ignore-err unwinding a failed mmap; the mmap error is returned
		return nil, err
	}
	c := &Column{
		kernel: k, as: as, file: f, name: name,
		numPages: numPages, fullAddr: addr,
	}
	arr := make([][]byte, numPages)
	c.tlb.Store(&arr)
	for p := 0; p < numPages; p++ {
		pg, err := c.PageBytes(p)
		if err != nil {
			return nil, err
		}
		SetPageID(pg, uint64(p))
	}
	return c, nil
}

// fillPage materializes one page from the generator and stamps exact zone
// fields. buf is a caller-owned scratch slice of ValuesPerPage values.
func (c *Column) fillPage(g dist.Generator, p int, buf []uint64) error {
	g.FillPage(p, buf)
	pg, err := c.PageBytes(p)
	if err != nil {
		return err
	}
	min, max := buf[0], buf[0]
	for i, v := range buf {
		SetValueAt(pg, i, v)
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	SetZone(pg, min, max)
	return nil
}

// Fill populates every page's values from the generator and stamps exact
// zone fields.
func (c *Column) Fill(g dist.Generator) error {
	buf := make([]uint64, ValuesPerPage)
	for p := 0; p < c.numPages; p++ {
		if err := c.fillPage(g, p, buf); err != nil {
			return err
		}
	}
	return nil
}

// fillChunk is the number of pages a FillParallel worker claims at a
// time: large enough to amortize the atomic claim, small enough to keep
// workers balanced on skew-cost generators.
const fillChunk = 64

// FillParallel populates the column like Fill but shards pages across
// `workers` goroutines (<= 0 selects GOMAXPROCS). Generators keep no
// per-call state — FillPage depends only on (seed, page) — so the result
// is byte-identical to a serial Fill with the same generator, while
// multi-million-page columns initialize at memory speed. Workers claim
// disjoint page ranges and NewColumn has already faulted every page into
// the column's soft-TLB, so no locking is needed on the fill path.
func (c *Column) FillParallel(g dist.Generator, workers int) error {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > c.numPages {
		workers = c.numPages
	}
	if workers <= 1 {
		return c.Fill(g)
	}
	var (
		next    atomic.Int64
		wg      sync.WaitGroup
		errOnce sync.Once
		fillErr error
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			buf := make([]uint64, ValuesPerPage)
			for {
				start := int(next.Add(fillChunk)) - fillChunk
				if start >= c.numPages {
					return
				}
				end := start + fillChunk
				if end > c.numPages {
					end = c.numPages
				}
				for p := start; p < end; p++ {
					if err := c.fillPage(g, p, buf); err != nil {
						errOnce.Do(func() { fillErr = err })
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	return fillErr
}

// NumPages returns the column length in pages.
func (c *Column) NumPages() int { return c.numPages }

// Rows returns the number of value slots in the column.
func (c *Column) Rows() int { return c.numPages * ValuesPerPage }

// Name returns the column (file) name.
func (c *Column) Name() string { return c.name }

// File returns the backing main-memory file.
func (c *Column) File() *vmsim.File { return c.file }

// Space returns the address space the column's views live in.
func (c *Column) Space() *vmsim.AddressSpace { return c.as }

// Kernel returns the owning simulated kernel.
func (c *Column) Kernel() *vmsim.Kernel { return c.kernel }

// FullViewAddr returns the base address of the full view.
func (c *Column) FullViewAddr() vmsim.Addr { return c.fullAddr }

// EnableTiering attaches a two-tier frame map to the column (idempotent:
// a second call returns the existing map, first configuration wins). A
// budget given as a fraction of the column — callers pass HotFrames
// directly — governs demotion; the engine's scan paths charge and
// validate accesses through the returned FileTier.
func (c *Column) EnableTiering(cfg vmsim.TierConfig) (*vmsim.FileTier, error) {
	if t := c.tier.Load(); t != nil {
		return t, nil
	}
	t, err := c.kernel.NewFileTier(c.numPages, cfg)
	if err != nil {
		return nil, err
	}
	if !c.tier.CompareAndSwap(nil, t) {
		return c.tier.Load(), nil
	}
	return t, nil
}

// Tier returns the column's tier map, or nil when tiering is off.
func (c *Column) Tier() *vmsim.FileTier { return c.tier.Load() }

// PageBytes returns physical page pageID accessed through the full view —
// a virtual-memory access whose translation is served from the column's
// soft-TLB after the first touch.
func (c *Column) PageBytes(pageID int) ([]byte, error) {
	if pageID < 0 || pageID >= c.numPages {
		return nil, fmt.Errorf("storage: page %d out of range [0,%d)", pageID, c.numPages)
	}
	if pg := (*c.tlb.Load())[pageID]; pg != nil {
		return pg, nil
	}
	// Cold slot: only reachable during NewColumn's own warming loop (the
	// constructor resolves every page before the column becomes visible),
	// so writing the slot here never races a reader.
	pg, err := c.as.PageData(vmsim.VPN(c.fullAddr>>vmsim.PageShift) + vmsim.VPN(pageID))
	if err != nil {
		return nil, err
	}
	(*c.tlb.Load())[pageID] = pg
	return pg, nil
}

// RowLocation splits a row index into (pageID, slot).
func (c *Column) RowLocation(row int) (pageID, slot int, err error) {
	if row < 0 || row >= c.Rows() {
		return 0, 0, fmt.Errorf("storage: row %d out of range [0,%d)", row, c.Rows())
	}
	return row / ValuesPerPage, row % ValuesPerPage, nil
}

// Value reads one row through the full view.
func (c *Column) Value(row int) (uint64, error) {
	p, s, err := c.RowLocation(row)
	if err != nil {
		return 0, err
	}
	pg, err := c.PageBytes(p)
	if err != nil {
		return 0, err
	}
	return ValueAt(pg, s), nil
}

// SetValue writes one row through the full view and returns the previous
// value — updates "happen through the full views" (§2.4), and the (row,
// old, new) triple is exactly what the update batches of §2.4 carry.
//
// On a column with EnableSnapshots, the first write to a page per
// snapshot epoch lands on a fresh copy of the page (copy-on-write, see
// pageForWrite): epoch readers holding the previous capture keep reading
// the frozen original, which is what makes lock-free routed reads both
// race-free and repeatable.
func (c *Column) SetValue(row int, v uint64) (old uint64, err error) {
	p, s, err := c.RowLocation(row)
	if err != nil {
		return 0, err
	}
	pg, err := c.pageForWrite(p)
	if err != nil {
		return 0, err
	}
	old = ValueAt(pg, s)
	SetValueAt(pg, s, v)
	enlargeZone(pg, v)
	return old, nil
}

// FullScan answers a range query [lo, hi] by scanning every page through
// the full view. This is the paper's baseline ("Baseline: Fullscan time").
func (c *Column) FullScan(lo, hi uint64) (count int, sum uint64, err error) {
	for p := 0; p < c.numPages; p++ {
		pg, err := c.PageBytes(p)
		if err != nil {
			return 0, 0, err
		}
		s := ScanFilter(pg, lo, hi)
		count += s.Count
		sum += s.Sum
	}
	return count, sum, nil
}

// FullScanParallel answers [lo, hi] like FullScan but shards the pages
// across `workers` goroutines (<= 0 selects GOMAXPROCS), mirroring the
// FillParallel design. Workers scan disjoint contiguous page blocks into
// private PageScan accumulators that are merged in block order, so the
// aggregates are byte-identical to a serial FullScan: count and wrapping
// sum are commutative, and no worker ever writes shared state. NewColumn
// resolves every page into the soft-TLB, making PageBytes a pure read on
// this path. With one worker (or a one-page column) it falls back to the
// serial FullScan.
func (c *Column) FullScanParallel(lo, hi uint64, workers int) (count int, sum uint64, err error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > c.numPages {
		workers = c.numPages
	}
	if workers <= 1 || c.numPages < MinParallelScanPages {
		return c.FullScan(lo, hi)
	}
	var (
		wg      sync.WaitGroup
		shards  = make([]PageScan, workers)
		errOnce sync.Once
		scanErr error
	)
	per := (c.numPages + workers - 1) / workers
	for w := 0; w < workers; w++ {
		start, end := w*per, (w+1)*per
		if end > c.numPages {
			end = c.numPages
		}
		if start >= end {
			break
		}
		wg.Add(1)
		go func(w, start, end int) {
			defer wg.Done()
			var acc PageScan
			for p := start; p < end; p++ {
				pg, err := c.PageBytes(p)
				if err != nil {
					errOnce.Do(func() { scanErr = err })
					return
				}
				acc.Merge(ScanFilter(pg, lo, hi))
			}
			shards[w] = acc
		}(w, start, end)
	}
	wg.Wait()
	if scanErr != nil {
		return 0, 0, scanErr
	}
	var total PageScan
	for _, s := range shards {
		total.Merge(s)
	}
	return total.Count, total.Sum, nil
}

// Close unmaps the full view and removes the backing file. The caller must
// have destroyed all partial views first.
func (c *Column) Close() error {
	if err := c.as.MunmapPages(c.fullAddr, c.numPages); err != nil {
		return err
	}
	return c.kernel.RemoveFile(c.name)
}
