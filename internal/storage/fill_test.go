package storage

import (
	"bytes"
	"fmt"
	"testing"

	"github.com/asv-db/asv/internal/dist"
	"github.com/asv-db/asv/internal/vmsim"
)

// TestFillParallelMatchesSerial: because FillPage is a pure function of
// (seed, page), a parallel fill must produce byte-identical pages —
// values, pageIDs and zones — to a serial fill, for every distribution
// and any worker count.
func TestFillParallelMatchesSerial(t *testing.T) {
	const pages = 257 // odd size: exercises the final partial chunk
	for _, name := range dist.Names() {
		for _, workers := range []int{0, 1, 3, 8, pages * 2} {
			t.Run(fmt.Sprintf("%s/workers=%d", name, workers), func(t *testing.T) {
				mk := func() dist.Generator {
					g, err := dist.ByName(name, 42, 0, 100_000_000, pages)
					if err != nil {
						t.Fatal(err)
					}
					return g
				}
				serial := newTestColumn(t, pages)
				if err := serial.Fill(mk()); err != nil {
					t.Fatal(err)
				}
				par := newTestColumn2(t, pages)
				if err := par.FillParallel(mk(), workers); err != nil {
					t.Fatal(err)
				}
				for p := 0; p < pages; p++ {
					a, err := serial.PageBytes(p)
					if err != nil {
						t.Fatal(err)
					}
					b, err := par.PageBytes(p)
					if err != nil {
						t.Fatal(err)
					}
					if !bytes.Equal(a, b) {
						t.Fatalf("page %d differs between serial and parallel fill", p)
					}
				}
			})
		}
	}
}

// newTestColumn2 mirrors newTestColumn with a distinct file name so two
// columns can coexist in one test.
func newTestColumn2(t *testing.T, pages int) *Column {
	t.Helper()
	k := vmsim.NewKernel(0)
	as := k.NewAddressSpace()
	c, err := NewColumn(k, as, "col2", pages)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestFillParallelStampsExactZones: the parallel path must stamp the same
// exact zones the serial path does.
func TestFillParallelStampsExactZones(t *testing.T) {
	c := newTestColumn(t, 64)
	if err := c.FillParallel(dist.NewUniform(3, 10, 1000), 4); err != nil {
		t.Fatal(err)
	}
	for p := 0; p < 64; p++ {
		pg, _ := c.PageBytes(p)
		zMin, zMax := Zone(pg)
		min, max := PageMinMax(pg)
		if zMin != min || zMax != max {
			t.Fatalf("page %d zone (%d,%d) != actual (%d,%d)", p, zMin, zMax, min, max)
		}
		if PageID(pg) != uint64(p) {
			t.Fatalf("page %d lost its pageID header", p)
		}
	}
}

// TestFillParallelSmallColumn: worker clamping on columns smaller than
// the requested parallelism, down to a single page.
func TestFillParallelSmallColumn(t *testing.T) {
	for _, pages := range []int{1, 2, 7} {
		c := newTestColumn(t, pages)
		if err := c.FillParallel(dist.NewUniform(1, 0, 99), 16); err != nil {
			t.Fatalf("pages=%d: %v", pages, err)
		}
		for p := 0; p < pages; p++ {
			pg, _ := c.PageBytes(p)
			if _, max := Zone(pg); max > 99 {
				t.Fatalf("pages=%d: zone max %d out of bounds", pages, max)
			}
		}
	}
}

func benchmarkFill(b *testing.B, pages, workers int) {
	g := dist.NewUniform(1, 0, 100_000_000)
	k := vmsim.NewKernel(0)
	as := k.NewAddressSpace()
	c, err := NewColumn(k, as, "bench", pages)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(pages) * PageSize)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if workers == 1 {
			err = c.Fill(g)
		} else {
			err = c.FillParallel(g, workers)
		}
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFillSerial / BenchmarkFillParallel are the pair the ISSUE asks
// for: the same 4096-page (16 MiB) uniform fill, serial vs sharded across
// workers. Compare ns/op for the speedup.
func BenchmarkFillSerial(b *testing.B) { benchmarkFill(b, 4096, 1) }

func BenchmarkFillParallel(b *testing.B) {
	for _, workers := range []int{2, 4, 8, 0} {
		name := fmt.Sprintf("workers=%d", workers)
		if workers == 0 {
			name = "workers=GOMAXPROCS"
		}
		b.Run(name, func(b *testing.B) { benchmarkFill(b, 4096, workers) })
	}
}
