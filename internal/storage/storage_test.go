package storage

import (
	"testing"
	"testing/quick"

	"github.com/asv-db/asv/internal/dist"
	"github.com/asv-db/asv/internal/vmsim"
)

func newTestColumn(t *testing.T, pages int) *Column {
	t.Helper()
	k := vmsim.NewKernel(0)
	as := k.NewAddressSpace()
	c, err := NewColumn(k, as, "col", pages)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestPageCodec(t *testing.T) {
	page := make([]byte, PageSize)
	SetPageID(page, 0xDEADBEEF)
	if PageID(page) != 0xDEADBEEF {
		t.Fatal("pageID round-trip failed")
	}
	SetValueAt(page, 0, 1)
	SetValueAt(page, ValuesPerPage-1, ^uint64(0))
	if ValueAt(page, 0) != 1 || ValueAt(page, ValuesPerPage-1) != ^uint64(0) {
		t.Fatal("value round-trip failed")
	}
	// Header must be untouched by value writes.
	if PageID(page) != 0xDEADBEEF {
		t.Fatal("value write clobbered header")
	}
}

func TestValuesPerPageConstant(t *testing.T) {
	if ValuesPerPage != 509 {
		t.Fatalf("ValuesPerPage = %d, want 509 (4 KiB page, 24 B header, 8 B values)", ValuesPerPage)
	}
}

func TestZoneCodec(t *testing.T) {
	page := make([]byte, PageSize)
	SetPageID(page, 42)
	SetZone(page, 100, 900)
	min, max := Zone(page)
	if min != 100 || max != 900 {
		t.Fatalf("Zone = (%d,%d)", min, max)
	}
	if PageID(page) != 42 {
		t.Fatal("SetZone clobbered pageID")
	}
	SetValueAt(page, 0, 1)
	if min, max := Zone(page); min != 100 || max != 900 {
		t.Fatalf("value write clobbered zone: (%d,%d)", min, max)
	}
}

func TestFillStampsExactZones(t *testing.T) {
	c := newTestColumn(t, 16)
	if err := c.Fill(dist.NewUniform(3, 10, 1000)); err != nil {
		t.Fatal(err)
	}
	for p := 0; p < 16; p++ {
		pg, _ := c.PageBytes(p)
		zMin, zMax := Zone(pg)
		min, max := PageMinMax(pg)
		if zMin != min || zMax != max {
			t.Fatalf("page %d zone (%d,%d) != actual (%d,%d)", p, zMin, zMax, min, max)
		}
	}
}

func TestSetValueEnlargesZone(t *testing.T) {
	c := newTestColumn(t, 2)
	if err := c.Fill(dist.NewUniform(3, 500, 600)); err != nil {
		t.Fatal(err)
	}
	pg, _ := c.PageBytes(0)
	if _, err := c.SetValue(3, 10); err != nil {
		t.Fatal(err)
	}
	if _, err := c.SetValue(4, 9999); err != nil {
		t.Fatal(err)
	}
	zMin, zMax := Zone(pg)
	if zMin != 10 || zMax != 9999 {
		t.Fatalf("zone after updates (%d,%d), want (10,9999)", zMin, zMax)
	}
	// Zones are conservative: overwriting 10 does not shrink the zone.
	if _, err := c.SetValue(3, 550); err != nil {
		t.Fatal(err)
	}
	if zMin, _ := Zone(pg); zMin != 10 {
		t.Fatal("zone shrank on overwrite")
	}
}

func TestNewColumnStampsPageIDs(t *testing.T) {
	c := newTestColumn(t, 16)
	for p := 0; p < 16; p++ {
		pg, err := c.PageBytes(p)
		if err != nil {
			t.Fatal(err)
		}
		if PageID(pg) != uint64(p) {
			t.Fatalf("page %d has pageID %d", p, PageID(pg))
		}
	}
	if c.NumPages() != 16 || c.Rows() != 16*ValuesPerPage {
		t.Fatalf("NumPages=%d Rows=%d", c.NumPages(), c.Rows())
	}
}

func TestNewColumnRejectsBadSize(t *testing.T) {
	k := vmsim.NewKernel(0)
	as := k.NewAddressSpace()
	if _, err := NewColumn(k, as, "c", 0); err == nil {
		t.Fatal("zero-page column accepted")
	}
	if _, err := NewColumn(k, as, "c", -3); err == nil {
		t.Fatal("negative-page column accepted")
	}
}

func TestValueSetValue(t *testing.T) {
	c := newTestColumn(t, 4)
	row := 2*ValuesPerPage + 17
	old, err := c.SetValue(row, 12345)
	if err != nil {
		t.Fatal(err)
	}
	if old != 0 {
		t.Fatalf("old = %d, want 0 (fresh column)", old)
	}
	v, err := c.Value(row)
	if err != nil || v != 12345 {
		t.Fatalf("Value = %d, %v", v, err)
	}
	old, err = c.SetValue(row, 678)
	if err != nil || old != 12345 {
		t.Fatalf("second SetValue old = %d, %v", old, err)
	}
	if _, err := c.Value(-1); err == nil {
		t.Fatal("negative row accepted")
	}
	if _, err := c.Value(c.Rows()); err == nil {
		t.Fatal("row past end accepted")
	}
}

func TestRowLocation(t *testing.T) {
	c := newTestColumn(t, 4)
	p, s, err := c.RowLocation(ValuesPerPage + 5)
	if err != nil || p != 1 || s != 5 {
		t.Fatalf("RowLocation = (%d,%d,%v)", p, s, err)
	}
}

func TestScanFilter(t *testing.T) {
	page := make([]byte, PageSize)
	SetPageID(page, 1)
	// Slots: 0..510 get value 2*i.
	for i := 0; i < ValuesPerPage; i++ {
		SetValueAt(page, i, uint64(2*i))
	}
	s := ScanFilter(page, 100, 200)
	// Qualifying: even numbers 100..200 inclusive -> 51 values.
	if s.Count != 51 {
		t.Fatalf("Count = %d, want 51", s.Count)
	}
	wantSum := uint64(0)
	for v := 100; v <= 200; v += 2 {
		wantSum += uint64(v)
	}
	if s.Sum != wantSum {
		t.Fatalf("Sum = %d, want %d", s.Sum, wantSum)
	}
	if !s.HasBelow || s.MaxBelow != 98 {
		t.Fatalf("MaxBelow = %d,%v, want 98,true", s.MaxBelow, s.HasBelow)
	}
	if !s.HasAbove || s.MinAbove != 202 {
		t.Fatalf("MinAbove = %d,%v, want 202,true", s.MinAbove, s.HasAbove)
	}
}

func TestScanFilterAllQualify(t *testing.T) {
	page := make([]byte, PageSize)
	for i := 0; i < ValuesPerPage; i++ {
		SetValueAt(page, i, 50)
	}
	s := ScanFilter(page, 0, 100)
	if s.Count != ValuesPerPage || s.HasBelow || s.HasAbove {
		t.Fatalf("got %+v", s)
	}
}

func TestScanFilterNoneQualify(t *testing.T) {
	page := make([]byte, PageSize)
	for i := 0; i < ValuesPerPage; i++ {
		SetValueAt(page, i, uint64(1000+i))
	}
	s := ScanFilter(page, 0, 10)
	if s.Count != 0 || s.HasBelow || !s.HasAbove || s.MinAbove != 1000 {
		t.Fatalf("got %+v", s)
	}
}

func TestPageMinMax(t *testing.T) {
	page := make([]byte, PageSize)
	for i := 0; i < ValuesPerPage; i++ {
		SetValueAt(page, i, uint64(100+i))
	}
	SetValueAt(page, 7, 3)
	SetValueAt(page, 8, 999999)
	min, max := PageMinMax(page)
	if min != 3 || max != 999999 {
		t.Fatalf("PageMinMax = (%d,%d)", min, max)
	}
}

func TestCollectMatches(t *testing.T) {
	page := make([]byte, PageSize)
	for i := 0; i < ValuesPerPage; i++ {
		SetValueAt(page, i, uint64(i))
	}
	var slots []int
	CollectMatches(page, 10, 12, func(slot int, v uint64) {
		slots = append(slots, slot)
		if v != uint64(slot) {
			t.Fatalf("slot %d carries %d", slot, v)
		}
	})
	if len(slots) != 3 || slots[0] != 10 || slots[2] != 12 {
		t.Fatalf("slots = %v", slots)
	}
}

func TestFillAndFullScan(t *testing.T) {
	c := newTestColumn(t, 64)
	g := dist.NewUniform(7, 0, 1000)
	if err := c.Fill(g); err != nil {
		t.Fatal(err)
	}
	// Reference: regenerate and filter in plain Go.
	lo, hi := uint64(100), uint64(300)
	buf := make([]uint64, ValuesPerPage)
	wantCount, wantSum := 0, uint64(0)
	for p := 0; p < 64; p++ {
		g.FillPage(p, buf)
		for _, v := range buf {
			if v >= lo && v <= hi {
				wantCount++
				wantSum += v
			}
		}
	}
	count, sum, err := c.FullScan(lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	if count != wantCount || sum != wantSum {
		t.Fatalf("FullScan = (%d,%d), want (%d,%d)", count, sum, wantCount, wantSum)
	}
}

func TestFillPreservesPageIDs(t *testing.T) {
	c := newTestColumn(t, 8)
	if err := c.Fill(dist.NewUniform(1, 0, 100)); err != nil {
		t.Fatal(err)
	}
	for p := 0; p < 8; p++ {
		pg, _ := c.PageBytes(p)
		if PageID(pg) != uint64(p) {
			t.Fatalf("page %d lost its header after Fill", p)
		}
	}
}

func TestWritesVisibleThroughFile(t *testing.T) {
	c := newTestColumn(t, 2)
	if _, err := c.SetValue(0, 77); err != nil {
		t.Fatal(err)
	}
	// Read the same slot via the file handle (bypassing the view).
	raw, err := c.File().PageData(0)
	if err != nil {
		t.Fatal(err)
	}
	if ValueAt(raw, 0) != 77 {
		t.Fatal("write through full view not visible through file")
	}
}

func TestClose(t *testing.T) {
	k := vmsim.NewKernel(0)
	as := k.NewAddressSpace()
	c, err := NewColumn(k, as, "col", 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if k.FramesInUse() != 0 {
		t.Fatalf("FramesInUse = %d after Close", k.FramesInUse())
	}
	if as.VMACount() != 0 {
		t.Fatalf("VMACount = %d after Close", as.VMACount())
	}
}

// Property: ScanFilter boundary values are consistent with a naive scan.
func TestQuickScanFilterMatchesNaive(t *testing.T) {
	f := func(vals []uint64, loRaw, hiRaw uint64) bool {
		lo, hi := loRaw, hiRaw
		if lo > hi {
			lo, hi = hi, lo
		}
		page := make([]byte, PageSize)
		for i := 0; i < ValuesPerPage; i++ {
			var v uint64
			if len(vals) > 0 {
				v = vals[i%len(vals)]
			}
			SetValueAt(page, i, v)
		}
		got := ScanFilter(page, lo, hi)

		var want PageScan
		for i := 0; i < ValuesPerPage; i++ {
			v := ValueAt(page, i)
			switch {
			case v < lo:
				if !want.HasBelow || v > want.MaxBelow {
					want.MaxBelow, want.HasBelow = v, true
				}
			case v > hi:
				if !want.HasAbove || v < want.MinAbove {
					want.MinAbove, want.HasAbove = v, true
				}
			default:
				want.Count++
				want.Sum += v
			}
		}
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func BenchmarkScanFilterPage(b *testing.B) {
	page := make([]byte, PageSize)
	for i := 0; i < ValuesPerPage; i++ {
		SetValueAt(page, i, uint64(i*7919%100000))
	}
	b.SetBytes(PageSize)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ScanFilter(page, 1000, 50000)
	}
}

func BenchmarkFullScan(b *testing.B) {
	k := vmsim.NewKernel(0)
	as := k.NewAddressSpace()
	c, err := NewColumn(k, as, "col", 1024)
	if err != nil {
		b.Fatal(err)
	}
	if err := c.Fill(dist.NewUniform(1, 0, 100_000_000)); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(1024 * PageSize))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := c.FullScan(0, 50_000_000); err != nil {
			b.Fatal(err)
		}
	}
}
