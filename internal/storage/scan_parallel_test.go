package storage

import (
	"testing"

	"github.com/asv-db/asv/internal/dist"
	"github.com/asv-db/asv/internal/vmsim"
)

func testColumn(t *testing.T, pages int, g dist.Generator) *Column {
	t.Helper()
	k := vmsim.NewKernel(0)
	as := k.NewAddressSpace()
	as.SetMaxMapCount(1 << 30)
	c, err := NewColumn(k, as, "scan", pages)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Fill(g); err != nil {
		t.Fatal(err)
	}
	return c
}

// TestFullScanParallelEquivalence checks, for every registered generator
// and several worker counts, that the parallel scan kernel reproduces the
// serial aggregates exactly — the equivalence table the parallel query
// path relies on.
func TestFullScanParallelEquivalence(t *testing.T) {
	const (
		pages  = 96
		domain = 1_000_000
	)
	ranges := [][2]uint64{
		{0, domain}, // everything
		{0, 0},      // single point at the bottom
		{domain / 4, domain / 2},
		{domain - 10, domain},    // top sliver
		{domain + 1, ^uint64(0)}, // nothing qualifies
	}
	for _, name := range dist.Names() {
		t.Run(name, func(t *testing.T) {
			g, err := dist.ByName(name, 7, 0, domain, pages)
			if err != nil {
				t.Fatal(err)
			}
			col := testColumn(t, pages, g)
			defer col.Close()
			for _, r := range ranges {
				wantCount, wantSum, err := col.FullScan(r[0], r[1])
				if err != nil {
					t.Fatal(err)
				}
				for _, workers := range []int{0, 1, 2, 3, 7, 16, 200} {
					gotCount, gotSum, err := col.FullScanParallel(r[0], r[1], workers)
					if err != nil {
						t.Fatal(err)
					}
					if gotCount != wantCount || gotSum != wantSum {
						t.Errorf("%s [%d,%d] workers=%d: got (%d,%d), want (%d,%d)",
							name, r[0], r[1], workers, gotCount, gotSum, wantCount, wantSum)
					}
				}
			}
		})
	}
}

// TestPageScanMerge exercises the shard reducer directly: merging in any
// order must equal a serial ScanFilter over the concatenation.
func TestPageScanMerge(t *testing.T) {
	g := dist.NewUniform(3, 0, 10_000)
	col := testColumn(t, 8, g)
	defer col.Close()
	const lo, hi = 2_000, 7_000

	var serial PageScan
	for p := 0; p < col.NumPages(); p++ {
		pg, err := col.PageBytes(p)
		if err != nil {
			t.Fatal(err)
		}
		serial.Merge(ScanFilter(pg, lo, hi))
	}

	// Two-shard split at every boundary, merged both ways.
	for cut := 0; cut <= col.NumPages(); cut++ {
		var a, b PageScan
		for p := 0; p < cut; p++ {
			pg, _ := col.PageBytes(p)
			a.Merge(ScanFilter(pg, lo, hi))
		}
		for p := cut; p < col.NumPages(); p++ {
			pg, _ := col.PageBytes(p)
			b.Merge(ScanFilter(pg, lo, hi))
		}
		ab := a
		ab.Merge(b)
		ba := b
		ba.Merge(a)
		for _, m := range []PageScan{ab, ba} {
			if m != serial {
				t.Fatalf("cut=%d: merged %+v != serial %+v", cut, m, serial)
			}
		}
	}
}

// TestPageScanMergeBoundaries pins the boundary-observation semantics of
// Merge: tightest value wins on each side, absent sides stay absent.
func TestPageScanMergeBoundaries(t *testing.T) {
	a := PageScan{Count: 1, Sum: 5, MaxBelow: 10, HasBelow: true}
	b := PageScan{Count: 2, Sum: 7, MaxBelow: 20, HasBelow: true, MinAbove: 100, HasAbove: true}
	a.Merge(b)
	if a.Count != 3 || a.Sum != 12 {
		t.Fatalf("aggregates: %+v", a)
	}
	if !a.HasBelow || a.MaxBelow != 20 {
		t.Fatalf("below: %+v", a)
	}
	if !a.HasAbove || a.MinAbove != 100 {
		t.Fatalf("above: %+v", a)
	}
	var zero PageScan
	zero.Merge(PageScan{})
	if zero != (PageScan{}) {
		t.Fatalf("zero merge: %+v", zero)
	}
}
