package storage

import (
	"testing"

	"github.com/asv-db/asv/internal/dist"
	"github.com/asv-db/asv/internal/vmsim"
)

func cowColumn(t *testing.T, pages int) (*vmsim.Kernel, *Column) {
	t.Helper()
	k := vmsim.NewKernel(0)
	as := k.NewAddressSpace()
	as.SetMaxMapCount(1 << 30)
	c, err := NewColumn(k, as, "cow", pages)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Fill(dist.NewUniform(1, 0, 1000)); err != nil {
		t.Fatal(err)
	}
	return k, c
}

// TestSnapshotCaptureFreezesPages pins the copy-on-write contract: a
// capture taken before a write keeps the pre-write bytes, the live
// column sees the post-write bytes, and later writes to the same page in
// the same epoch stay on the shadow (one displaced frame per page per
// epoch).
func TestSnapshotCaptureFreezesPages(t *testing.T) {
	_, c := cowColumn(t, 4)
	c.EnableSnapshots()

	before, retired := c.CaptureSnapshot()
	if len(retired) != 0 {
		t.Fatalf("fresh column retired %d frames", len(retired))
	}
	oldVal, err := c.Value(0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.SetValue(0, oldVal+1); err != nil {
		t.Fatal(err)
	}
	if _, err := c.SetValue(1, 99); err != nil { // same page, same epoch
		t.Fatal(err)
	}

	// The capture still reads the frozen original.
	if got := ValueAt(before[0], 0); got != oldVal {
		t.Fatalf("capture moved: slot 0 = %d, want %d", got, oldVal)
	}
	// The live column reads the shadow.
	if got, _ := c.Value(0); got != oldVal+1 {
		t.Fatalf("live read = %d, want %d", got, oldVal+1)
	}
	if got, _ := c.Value(1); got != 99 {
		t.Fatalf("live read = %d, want 99", got)
	}

	// Exactly one frame was displaced for the one dirty page.
	after, retired := c.CaptureSnapshot()
	if len(retired) != 1 {
		t.Fatalf("retired %d frames, want 1", len(retired))
	}
	if got := ValueAt(after[0], 0); got != oldVal+1 {
		t.Fatalf("new capture = %d, want %d", got, oldVal+1)
	}
	// The two captures share untouched pages and differ on the dirty one.
	if &before[1][0] != &after[1][0] {
		t.Fatal("untouched page was copied")
	}
	if &before[0][0] == &after[0][0] {
		t.Fatal("dirty page still shared")
	}
}

// TestSnapshotEpochShadowsAgain checks that a page shadowed in one epoch
// is shadowed again in the next — each capture must stay frozen
// independently.
func TestSnapshotEpochShadowsAgain(t *testing.T) {
	k, c := cowColumn(t, 2)
	c.EnableSnapshots()

	capA, _ := c.CaptureSnapshot()
	if _, err := c.SetValue(0, 11); err != nil {
		t.Fatal(err)
	}
	capB, retired := c.CaptureSnapshot()
	if len(retired) != 1 {
		t.Fatalf("epoch 1 retired %d frames, want 1", len(retired))
	}
	if _, err := c.SetValue(0, 22); err != nil {
		t.Fatal(err)
	}
	_, retired2 := c.CaptureSnapshot()
	if len(retired2) != 1 {
		t.Fatalf("epoch 2 retired %d frames, want 1", len(retired2))
	}
	if got := ValueAt(capB[0], 0); got != 11 {
		t.Fatalf("middle capture = %d, want 11", got)
	}
	if got, _ := c.Value(0); got != 22 {
		t.Fatalf("live = %d, want 22", got)
	}
	_ = capA
	// Freeing the displaced frames hands them back to the allocator.
	for _, fr := range append(retired, retired2...) {
		k.FreeFrame(fr)
	}
}

// TestSnapshotsDisabledWritesInPlace pins the baseline behaviour for
// columns that never enable snapshots (the explicit-index baselines):
// SetValue writes in place and no frames are displaced.
func TestSnapshotsDisabledWritesInPlace(t *testing.T) {
	k, c := cowColumn(t, 2)
	inUse := k.FramesInUse()
	pg, err := c.PageBytes(0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.SetValue(0, 7); err != nil {
		t.Fatal(err)
	}
	if got := ValueAt(pg, 0); got != 7 {
		t.Fatalf("in-place write not visible through prior page slice: %d", got)
	}
	if got := k.FramesInUse(); got != inUse {
		t.Fatalf("frames allocated on the in-place path: %d -> %d", inUse, got)
	}
}
