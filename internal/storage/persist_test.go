package storage

import (
	"bytes"
	"io"
	"testing"

	"github.com/asv-db/asv/internal/dist"
	"github.com/asv-db/asv/internal/vmsim"
)

func TestWriteReadRoundTrip(t *testing.T) {
	k := vmsim.NewKernel(0)
	as := k.NewAddressSpace()
	src, err := NewColumn(k, as, "src", 32)
	if err != nil {
		t.Fatal(err)
	}
	if err := src.Fill(dist.NewSine(5, 0, 1_000_000, 8)); err != nil {
		t.Fatal(err)
	}
	if _, err := src.SetValue(123, 4567); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	n, err := src.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	wantLen := int64(8 + 8 + 32*PageSize + 8)
	if n != wantLen || int64(buf.Len()) != wantLen {
		t.Fatalf("wrote %d bytes, want %d", n, wantLen)
	}

	dst, err := ReadColumn(k, as, "dst", &buf)
	if err != nil {
		t.Fatal(err)
	}
	if dst.NumPages() != src.NumPages() {
		t.Fatalf("NumPages = %d", dst.NumPages())
	}
	for r := 0; r < src.Rows(); r += 97 {
		a, _ := src.Value(r)
		b, _ := dst.Value(r)
		if a != b {
			t.Fatalf("row %d: %d != %d", r, a, b)
		}
	}
	// Spot check the special value and a full-scan equivalence.
	v, _ := dst.Value(123)
	if v != 4567 {
		t.Fatalf("row 123 = %d", v)
	}
	c1, s1, _ := src.FullScan(0, 500_000)
	c2, s2, _ := dst.FullScan(0, 500_000)
	if c1 != c2 || s1 != s2 {
		t.Fatal("full scans disagree after round trip")
	}
}

func TestReadColumnRejectsCorruption(t *testing.T) {
	k := vmsim.NewKernel(0)
	as := k.NewAddressSpace()
	src, _ := NewColumn(k, as, "src", 4)
	_ = src.Fill(dist.NewUniform(1, 0, 100))
	var buf bytes.Buffer
	if _, err := src.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	cases := []struct {
		name   string
		mutate func([]byte) []byte
	}{
		{"bad magic", func(b []byte) []byte {
			c := append([]byte(nil), b...)
			c[0] = 'X'
			return c
		}},
		{"flipped data bit", func(b []byte) []byte {
			c := append([]byte(nil), b...)
			c[100] ^= 1
			return c
		}},
		{"truncated", func(b []byte) []byte { return b[:len(b)-9] }},
		{"insane page count", func(b []byte) []byte {
			c := append([]byte(nil), b...)
			for i := 8; i < 16; i++ {
				c[i] = 0xFF
			}
			return c
		}},
		{"empty", func([]byte) []byte { return nil }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			k2 := vmsim.NewKernel(0)
			as2 := k2.NewAddressSpace()
			_, err := ReadColumn(k2, as2, "c", bytes.NewReader(tc.mutate(good)))
			if err == nil {
				t.Fatal("corrupt input accepted")
			}
			// No leaked frames after a failed load.
			if k2.FramesInUse() != 0 {
				t.Fatalf("FramesInUse = %d after failed load", k2.FramesInUse())
			}
		})
	}
}

func TestReadColumnNameCollision(t *testing.T) {
	k := vmsim.NewKernel(0)
	as := k.NewAddressSpace()
	src, _ := NewColumn(k, as, "col", 4)
	_ = src.Fill(dist.NewUniform(1, 0, 100))
	var buf bytes.Buffer
	if _, err := src.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadColumn(k, as, "col", &buf); err == nil {
		t.Fatal("load over an existing column name succeeded")
	}
}

// errWriter fails after n bytes, exercising WriteTo error paths.
type errWriter struct{ left int }

func (w *errWriter) Write(p []byte) (int, error) {
	if len(p) > w.left {
		n := w.left
		w.left = 0
		return n, io.ErrShortWrite
	}
	w.left -= len(p)
	return len(p), nil
}

func TestWriteToPropagatesErrors(t *testing.T) {
	k := vmsim.NewKernel(0)
	as := k.NewAddressSpace()
	src, _ := NewColumn(k, as, "src", 512)
	// bufio flushes once its 1 MiB buffer fills; fail on that flush.
	if _, err := src.WriteTo(&errWriter{left: 4096}); err == nil {
		t.Fatal("write error swallowed")
	}
}
