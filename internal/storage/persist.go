package storage

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"

	"github.com/asv-db/asv/internal/vmsim"
)

// Serialization format: an 8-byte magic, the page count, the raw pages in
// order, and a trailing CRC-32 (Castagnoli) over the page data. Views are
// deliberately not persisted: they are an adaptive cache that the engine
// regrows from the workload, and their virtual addresses are meaningless
// across processes.
const persistMagic = "ASVCOL01"

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// WriteTo serializes the column to w and returns the number of bytes
// written. The column must not be mutated concurrently.
func (c *Column) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriterSize(w, 1<<20)
	var written int64

	if _, err := bw.WriteString(persistMagic); err != nil {
		return written, err
	}
	written += int64(len(persistMagic))

	var hdr [8]byte
	binary.LittleEndian.PutUint64(hdr[:], uint64(c.numPages))
	if _, err := bw.Write(hdr[:]); err != nil {
		return written, err
	}
	written += 8

	crc := crc32.New(crcTable)
	for p := 0; p < c.numPages; p++ {
		pg, err := c.PageBytes(p)
		if err != nil {
			return written, err
		}
		if _, err := bw.Write(pg); err != nil {
			return written, err
		}
		_, _ = crc.Write(pg) //asv:ignore-err hash.Hash.Write never fails
		written += PageSize
	}

	binary.LittleEndian.PutUint64(hdr[:], uint64(crc.Sum32()))
	if _, err := bw.Write(hdr[:]); err != nil {
		return written, err
	}
	written += 8
	return written, bw.Flush()
}

// ReadColumn materializes a column previously serialized with WriteTo,
// creating its backing file and full view in the given kernel and address
// space under the given name.
func ReadColumn(k *vmsim.Kernel, as *vmsim.AddressSpace, name string, r io.Reader) (*Column, error) {
	br := bufio.NewReaderSize(r, 1<<20)

	magic := make([]byte, len(persistMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("storage: reading magic: %w", err)
	}
	if string(magic) != persistMagic {
		return nil, fmt.Errorf("storage: bad magic %q (not an ASV column file)", magic)
	}

	var hdr [8]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("storage: reading page count: %w", err)
	}
	numPages := binary.LittleEndian.Uint64(hdr[:])
	const maxPages = 1 << 28 // 1 TiB column: refuse obviously corrupt headers
	if numPages == 0 || numPages > maxPages {
		return nil, fmt.Errorf("storage: implausible page count %d", numPages)
	}

	c, err := NewColumn(k, as, name, int(numPages))
	if err != nil {
		return nil, err
	}
	crc := crc32.New(crcTable)
	for p := 0; p < int(numPages); p++ {
		pg, err := c.PageBytes(p)
		if err != nil {
			_ = c.Close() //asv:ignore-err unwinding a failed load; the read error is returned
			return nil, err
		}
		if _, err := io.ReadFull(br, pg); err != nil {
			_ = c.Close() //asv:ignore-err unwinding a failed load; the read error is returned
			return nil, fmt.Errorf("storage: reading page %d: %w", p, err)
		}
		_, _ = crc.Write(pg) //asv:ignore-err hash.Hash.Write never fails
	}
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		_ = c.Close() //asv:ignore-err unwinding a failed load; the read error is returned
		return nil, fmt.Errorf("storage: reading checksum: %w", err)
	}
	if want := binary.LittleEndian.Uint64(hdr[:]); want != uint64(crc.Sum32()) {
		_ = c.Close() //asv:ignore-err unwinding a failed load; the checksum error is returned
		return nil, fmt.Errorf("storage: checksum mismatch (file %#x, computed %#x)", want, crc.Sum32())
	}
	return c, nil
}
