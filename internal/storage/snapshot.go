package storage

import (
	"github.com/asv-db/asv/internal/vmsim"
)

// This file is the storage half of the engine's epoch-based snapshot
// machinery: a copy-on-write write path in the spirit of vmcache-style
// versioned page access ("Virtual-Memory Assisted Buffer Management"),
// adapted to the paper's update model. A published engine state captures
// the column's resolved soft-TLB (CaptureSnapshot); from that moment the
// captured array and every frame it references are immutable. The first
// write to a page in the next epoch therefore shadows the page — a fresh
// frame is installed behind the file page, initialized with the current
// contents (vmsim.File.ReplacePageFrame) — and all later writes of the
// same epoch land on the shadow in place. Readers of older captures keep
// reading the frozen originals; the displaced frames are returned by the
// next CaptureSnapshot for the engine to free once every state that
// could reference them has drained.

// EnableSnapshots switches the column's write path to per-epoch
// copy-on-write. It must be called before the column is used
// concurrently (the adaptive engine enables it at construction).
// Fill/FillParallel intentionally bypass the shadow path — bulk loading
// precedes concurrent use, exactly like NewColumn's pageID stamping.
func (c *Column) EnableSnapshots() {
	c.snapMu.Lock()
	defer c.snapMu.Unlock()
	if c.snapOn {
		return
	}
	c.snapOn = true
	c.pageEpoch = make([]uint64, c.numPages)
	c.snapEpoch.Store(1)
}

// SnapshotsEnabled reports whether the copy-on-write write path is on.
func (c *Column) SnapshotsEnabled() bool {
	c.snapMu.Lock()
	defer c.snapMu.Unlock()
	return c.snapOn
}

// CaptureSnapshot hands out the column's current resolved soft-TLB as an
// immutable capture and opens the next snapshot epoch, returning the
// frames displaced by copy-on-write shadows since the previous capture.
// The caller (the engine, holding its exclusive room) attaches the
// retired frames to the state being superseded and frees them via
// vmsim.Kernel.FreeFrame only after that state and every older one have
// drained — a translation resolved under an old capture may still point
// at them until then.
//
// The returned array is shared, not copied: the column installs a
// private clone before the first shadow of the new epoch (pageForWrite),
// so the capture is never written again. Write-free epochs share one
// array across any number of captures.
func (c *Column) CaptureSnapshot() (pages [][]byte, retired []vmsim.FrameID) {
	c.snapMu.Lock()
	defer c.snapMu.Unlock()
	retired = c.retired
	c.retired = nil
	c.cloneNeeded = true
	c.snapEpoch.Add(1)
	return *c.tlb.Load(), retired
}

// pageForWrite resolves page p for an in-place write. Without snapshots
// this is PageBytes. With snapshots, the first write to p in the current
// epoch shadows the page; later writes of the epoch hit the shadow
// directly. Callers must serialize writes to the same page (the engine's
// per-shard buffer locks do); writes to different pages may run
// concurrently.
func (c *Column) pageForWrite(p int) ([]byte, error) {
	if !c.snapOn {
		return c.PageBytes(p)
	}
	// The epoch only advances under the engine's exclusive room, which
	// excludes writers, so the load is stable for the whole write. The
	// pageEpoch slot is owned by p's shard lock: the comparison is exact.
	epoch := c.snapEpoch.Load()
	if t := c.tier.Load(); t != nil {
		// A write lands the page hot unconditionally: the shadow below
		// installs a fresh DRAM frame, and even the in-place branch makes
		// the page the epoch's working set. The promote's version bump
		// also invalidates concurrent optimistic readers mid-scan of the
		// page, which retry through their frozen capture.
		t.Promote(p)
	}
	if c.pageEpoch[p] == epoch {
		// Already shadowed this epoch. A concurrent shadow of another
		// page may have cloned the array since, but clones copy slots
		// verbatim, so a stale array resolves p identically.
		return (*c.tlb.Load())[p], nil
	}
	return c.shadowPage(p, epoch)
}

// shadowPage performs the copy-on-write of page p for the given epoch:
// clone the (captured) soft-TLB array if this is the epoch's first
// shadow, install a fresh frame with the page's current contents, repoint
// the full view's translation, and record the displaced frame for the
// next capture to retire.
func (c *Column) shadowPage(p int, epoch uint64) ([]byte, error) {
	c.snapMu.Lock()
	defer c.snapMu.Unlock()
	if c.cloneNeeded {
		old := *c.tlb.Load()
		clone := make([][]byte, len(old))
		copy(clone, old)
		c.tlb.Store(&clone)
		c.cloneNeeded = false
	}
	oldFr, data, err := c.file.ReplacePageFrame(p)
	if err != nil {
		return nil, err
	}
	c.retired = append(c.retired, oldFr)
	(*c.tlb.Load())[p] = data
	// The full view's page-table entry still points at the displaced
	// frame; refresh it so PageData and future warmTLB walks resolve the
	// live page. Partial views mapping p are repointed during alignment,
	// which is the only consumer of their translations for dirty pages.
	if err := c.as.RepointPage(vmsim.VPN(c.fullAddr>>vmsim.PageShift) + vmsim.VPN(p)); err != nil {
		return nil, err
	}
	c.pageEpoch[p] = epoch
	return data, nil
}
