package procmaps

import (
	"testing"
	"testing/quick"
)

func TestBimapAddLookup(t *testing.T) {
	b := NewBimap()
	b.Add(100, 5)
	b.Add(101, 7)
	b.Add(200, 5) // second view maps the same file page

	if fp, ok := b.FilePage(100); !ok || fp != 5 {
		t.Fatalf("FilePage(100) = %d,%v", fp, ok)
	}
	if _, ok := b.FilePage(999); ok {
		t.Fatal("FilePage(999) found")
	}
	vs := b.VirtualPages(5)
	if len(vs) != 2 {
		t.Fatalf("VirtualPages(5) = %v, want two entries", vs)
	}
	if b.Len() != 3 {
		t.Fatalf("Len = %d, want 3", b.Len())
	}
}

func TestBimapAddReplaces(t *testing.T) {
	b := NewBimap()
	b.Add(100, 5)
	b.Add(100, 9) // rewire: vpn 100 now maps file page 9
	if fp, _ := b.FilePage(100); fp != 9 {
		t.Fatalf("FilePage(100) = %d, want 9", fp)
	}
	if vs := b.VirtualPages(5); len(vs) != 0 {
		t.Fatalf("stale reverse entry: %v", vs)
	}
	if vs := b.VirtualPages(9); len(vs) != 1 || vs[0] != 100 {
		t.Fatalf("VirtualPages(9) = %v", vs)
	}
}

func TestBimapRemove(t *testing.T) {
	b := NewBimap()
	b.Add(1, 10)
	b.Add(2, 10)
	if !b.Remove(1) {
		t.Fatal("Remove(1) failed")
	}
	if b.Remove(1) {
		t.Fatal("double Remove succeeded")
	}
	if vs := b.VirtualPages(10); len(vs) != 1 || vs[0] != 2 {
		t.Fatalf("VirtualPages(10) = %v", vs)
	}
	if b.Len() != 1 {
		t.Fatalf("Len = %d", b.Len())
	}
}

func TestBimapMappedIn(t *testing.T) {
	b := NewBimap()
	b.Add(100, 5)
	b.Add(200, 5)
	if v, ok := b.MappedIn(5, 150, 250); !ok || v != 200 {
		t.Fatalf("MappedIn = %d,%v, want 200,true", v, ok)
	}
	if _, ok := b.MappedIn(5, 300, 400); ok {
		t.Fatal("MappedIn matched outside range")
	}
	if _, ok := b.MappedIn(6, 0, 1<<40); ok {
		t.Fatal("MappedIn matched absent file page")
	}
}

func TestBuildBimapFiltersInode(t *testing.T) {
	mappings := []Mapping{
		{Start: 0x1000, End: 0x3000, Inode: 7, Offset: 0x4000}, // 2 pages of inode 7
		{Start: 0x5000, End: 0x6000, Inode: 9, Offset: 0},      // different file
		{Start: 0x8000, End: 0x9000, Inode: 0},                 // anonymous
	}
	b := BuildBimap(mappings, 7, 4096)
	if b.Len() != 2 {
		t.Fatalf("Len = %d, want 2", b.Len())
	}
	if fp, ok := b.FilePage(1); !ok || fp != 4 {
		t.Fatalf("FilePage(vpn 1) = %d,%v, want 4", fp, ok)
	}
	if fp, ok := b.FilePage(2); !ok || fp != 5 {
		t.Fatalf("FilePage(vpn 2) = %d,%v, want 5", fp, ok)
	}
	if _, ok := b.FilePage(5); ok {
		t.Fatal("inode 9 leaked into bimap")
	}
}

// Property: after arbitrary Add/Remove sequences the two directions agree.
func TestQuickBimapConsistency(t *testing.T) {
	f := func(ops []uint16) bool {
		b := NewBimap()
		ref := map[uint64]int64{}
		for _, op := range ops {
			vpn := uint64(op % 64)
			fp := int64(op / 64 % 16)
			if op&0x8000 != 0 {
				b.Remove(vpn)
				delete(ref, vpn)
			} else {
				b.Add(vpn, fp)
				ref[vpn] = fp
			}
		}
		if b.Len() != len(ref) {
			return false
		}
		// Forward agrees with reference.
		for vpn, fp := range ref {
			if got, ok := b.FilePage(vpn); !ok || got != fp {
				return false
			}
		}
		// Reverse lists exactly the forward entries.
		seen := 0
		for fp := int64(0); fp < 16; fp++ {
			for _, vpn := range b.VirtualPages(fp) {
				if ref[vpn] != fp {
					return false
				}
				seen++
			}
		}
		return seen == len(ref)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
