package procmaps

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestBimapAddLookup(t *testing.T) {
	b := NewBimap()
	b.Add(100, 5)
	b.Add(101, 7)
	b.Add(200, 5) // second view maps the same file page

	if fp, ok := b.FilePage(100); !ok || fp != 5 {
		t.Fatalf("FilePage(100) = %d,%v", fp, ok)
	}
	if _, ok := b.FilePage(999); ok {
		t.Fatal("FilePage(999) found")
	}
	vs := b.VirtualPages(5)
	if len(vs) != 2 {
		t.Fatalf("VirtualPages(5) = %v, want two entries", vs)
	}
	if b.Len() != 3 {
		t.Fatalf("Len = %d, want 3", b.Len())
	}
}

func TestBimapAddReplaces(t *testing.T) {
	b := NewBimap()
	b.Add(100, 5)
	b.Add(100, 9) // rewire: vpn 100 now maps file page 9
	if fp, _ := b.FilePage(100); fp != 9 {
		t.Fatalf("FilePage(100) = %d, want 9", fp)
	}
	if vs := b.VirtualPages(5); len(vs) != 0 {
		t.Fatalf("stale reverse entry: %v", vs)
	}
	if vs := b.VirtualPages(9); len(vs) != 1 || vs[0] != 100 {
		t.Fatalf("VirtualPages(9) = %v", vs)
	}
}

func TestBimapRemove(t *testing.T) {
	b := NewBimap()
	b.Add(1, 10)
	b.Add(2, 10)
	if !b.Remove(1) {
		t.Fatal("Remove(1) failed")
	}
	if b.Remove(1) {
		t.Fatal("double Remove succeeded")
	}
	if vs := b.VirtualPages(10); len(vs) != 1 || vs[0] != 2 {
		t.Fatalf("VirtualPages(10) = %v", vs)
	}
	if b.Len() != 1 {
		t.Fatalf("Len = %d", b.Len())
	}
}

func TestBimapMappedIn(t *testing.T) {
	b := NewBimap()
	b.Add(100, 5)
	b.Add(200, 5)
	if v, ok := b.MappedIn(5, 150, 250); !ok || v != 200 {
		t.Fatalf("MappedIn = %d,%v, want 200,true", v, ok)
	}
	if _, ok := b.MappedIn(5, 300, 400); ok {
		t.Fatal("MappedIn matched outside range")
	}
	if _, ok := b.MappedIn(6, 0, 1<<40); ok {
		t.Fatal("MappedIn matched absent file page")
	}
}

func TestBuildBimapFiltersInode(t *testing.T) {
	mappings := []Mapping{
		{Start: 0x1000, End: 0x3000, Inode: 7, Offset: 0x4000}, // 2 pages of inode 7
		{Start: 0x5000, End: 0x6000, Inode: 9, Offset: 0},      // different file
		{Start: 0x8000, End: 0x9000, Inode: 0},                 // anonymous
	}
	b := BuildBimap(mappings, 7, 4096)
	if b.Len() != 2 {
		t.Fatalf("Len = %d, want 2", b.Len())
	}
	if fp, ok := b.FilePage(1); !ok || fp != 4 {
		t.Fatalf("FilePage(vpn 1) = %d,%v, want 4", fp, ok)
	}
	if fp, ok := b.FilePage(2); !ok || fp != 5 {
		t.Fatalf("FilePage(vpn 2) = %d,%v, want 5", fp, ok)
	}
	if _, ok := b.FilePage(5); ok {
		t.Fatal("inode 9 leaked into bimap")
	}
}

// Property: after arbitrary Add/Remove sequences the two directions agree.
func TestQuickBimapConsistency(t *testing.T) {
	f := func(ops []uint16) bool {
		b := NewBimap()
		ref := map[uint64]int64{}
		for _, op := range ops {
			vpn := uint64(op % 64)
			fp := int64(op / 64 % 16)
			if op&0x8000 != 0 {
				b.Remove(vpn)
				delete(ref, vpn)
			} else {
				b.Add(vpn, fp)
				ref[vpn] = fp
			}
		}
		if b.Len() != len(ref) {
			return false
		}
		// Forward agrees with reference.
		for vpn, fp := range ref {
			if got, ok := b.FilePage(vpn); !ok || got != fp {
				return false
			}
		}
		// Reverse lists exactly the forward entries.
		seen := 0
		for fp := int64(0); fp < 16; fp++ {
			for _, vpn := range b.VirtualPages(fp) {
				if ref[vpn] != fp {
					return false
				}
				seen++
			}
		}
		return seen == len(ref)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestBimapConcurrentPerViewWorkers models parallel update alignment:
// each worker owns a disjoint virtual-page range (its "view") but all
// workers map and unmap the same shared file pages. Per-VPN operations
// are serialized per worker (the bimap's contract); the shard locks must
// keep the reverse lists consistent and MappedIn answers correct for
// each worker's own range throughout.
func TestBimapConcurrentPerViewWorkers(t *testing.T) {
	const (
		workers   = 4
		perView   = 400
		filePages = 64
	)
	b := NewBimap()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := uint64(w * 10_000)
			hi := base + perView
			for i := 0; i < perView; i++ {
				vpn := base + uint64(i)
				fp := int64(i % filePages)
				b.Add(vpn, fp)
				// Several of this worker's pages may map fp; MappedIn
				// must report one of them, inside the worker's range.
				got, ok := b.MappedIn(fp, base, hi)
				if !ok || got < base || got >= hi {
					t.Errorf("worker %d: MappedIn(%d) = %d,%v after Add(%d)", w, fp, got, ok, vpn)
					return
				}
				if mapped, ok := b.FilePage(got); !ok || mapped != fp {
					t.Errorf("worker %d: MappedIn(%d) returned vpn %d mapping %d,%v", w, fp, got, mapped, ok)
					return
				}
			}
			// Rewire a third, remove a third.
			for i := 0; i < perView; i += 3 {
				b.Add(base+uint64(i), int64((i+1)%filePages))
			}
			for i := 1; i < perView; i += 3 {
				if !b.Remove(base + uint64(i)) {
					t.Errorf("worker %d: Remove(%d) failed", w, base+uint64(i))
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	// Sequential consistency check against a per-worker reference.
	want := 0
	for w := 0; w < workers; w++ {
		base := uint64(w * 10_000)
		for i := 0; i < perView; i++ {
			vpn := base + uint64(i)
			switch {
			case i%3 == 1: // removed
				if _, ok := b.FilePage(vpn); ok {
					t.Fatalf("removed vpn %d still mapped", vpn)
				}
			case i%3 == 0: // rewired
				want++
				if fp, ok := b.FilePage(vpn); !ok || fp != int64((i+1)%filePages) {
					t.Fatalf("rewired vpn %d -> %d,%v", vpn, fp, ok)
				}
			default:
				want++
				if fp, ok := b.FilePage(vpn); !ok || fp != int64(i%filePages) {
					t.Fatalf("vpn %d -> %d,%v", vpn, fp, ok)
				}
			}
		}
	}
	if b.Len() != want {
		t.Fatalf("Len = %d, want %d", b.Len(), want)
	}
	// Reverse direction agrees with forward.
	seen := 0
	for fp := int64(0); fp < filePages; fp++ {
		for _, vpn := range b.VirtualPages(fp) {
			if got, ok := b.FilePage(vpn); !ok || got != fp {
				t.Fatalf("reverse entry %d -> %d disagrees with forward (%d,%v)", fp, vpn, got, ok)
			}
			seen++
		}
	}
	if seen != want {
		t.Fatalf("reverse lists hold %d entries, want %d", seen, want)
	}
}
