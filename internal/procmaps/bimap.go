package procmaps

// Bimap is a page-wise bidirectional map between virtual pages and file
// (physical) pages of a single backing file — the stand-in for the Boost
// bimap of §2.5. The forward direction (virtual → file page) is unique;
// the reverse direction is multi-valued because several partial views may
// map the same physical page.
//
// The bimap is built once from a parsed maps file before an update batch
// and then "maintained from user-space during the update process": Add and
// Remove keep both directions consistent while pages are rewired.
type Bimap struct {
	v2p map[uint64]int64   // virtual page number -> file page
	p2v map[int64][]uint64 // file page -> virtual page numbers
}

// NewBimap returns an empty bimap.
func NewBimap() *Bimap {
	return &Bimap{
		v2p: make(map[uint64]int64),
		p2v: make(map[int64][]uint64),
	}
}

// BuildBimap materializes the page-wise mapping of every area of mappings
// that is backed by the file with the given inode. pageSize is the page
// granularity (4096 throughout this repository).
func BuildBimap(mappings []Mapping, inode uint64, pageSize int) *Bimap {
	b := NewBimap()
	for _, m := range mappings {
		if m.Inode != inode {
			continue
		}
		pages := m.Pages(pageSize)
		firstVPN := m.Start / uint64(pageSize)
		firstFile := int64(m.Offset / uint64(pageSize))
		for i := 0; i < pages; i++ {
			b.Add(firstVPN+uint64(i), firstFile+int64(i))
		}
	}
	return b
}

// Add records that virtual page vpn maps file page fp, replacing any
// previous mapping of vpn.
func (b *Bimap) Add(vpn uint64, fp int64) {
	if old, ok := b.v2p[vpn]; ok {
		b.dropReverse(old, vpn)
	}
	b.v2p[vpn] = fp
	b.p2v[fp] = append(b.p2v[fp], vpn)
}

// Remove forgets the mapping of virtual page vpn. It reports whether the
// page was mapped.
func (b *Bimap) Remove(vpn uint64) bool {
	fp, ok := b.v2p[vpn]
	if !ok {
		return false
	}
	delete(b.v2p, vpn)
	b.dropReverse(fp, vpn)
	return true
}

func (b *Bimap) dropReverse(fp int64, vpn uint64) {
	vs := b.p2v[fp]
	for i, v := range vs {
		if v == vpn {
			vs[i] = vs[len(vs)-1]
			vs = vs[:len(vs)-1]
			break
		}
	}
	if len(vs) == 0 {
		delete(b.p2v, fp)
	} else {
		b.p2v[fp] = vs
	}
}

// FilePage returns the file page mapped at virtual page vpn.
func (b *Bimap) FilePage(vpn uint64) (int64, bool) {
	fp, ok := b.v2p[vpn]
	return fp, ok
}

// VirtualPages returns the virtual pages that map file page fp. The
// returned slice is owned by the bimap; callers must not modify it.
func (b *Bimap) VirtualPages(fp int64) []uint64 {
	return b.p2v[fp]
}

// MappedIn reports whether file page fp is mapped anywhere inside the
// virtual page range [lo, hi), and returns the first such virtual page.
// Update alignment uses this to test "is page p already indexed by this
// partial view" (§2.4), with [lo, hi) being the view's virtual area.
func (b *Bimap) MappedIn(fp int64, lo, hi uint64) (uint64, bool) {
	for _, v := range b.p2v[fp] {
		if v >= lo && v < hi {
			return v, true
		}
	}
	return 0, false
}

// Len returns the number of virtual pages currently recorded.
func (b *Bimap) Len() int { return len(b.v2p) }
