package procmaps

import "sync"

// bimapShards is the lock-shard count of both bimap directions. Sixteen
// power-of-two shards keep the masked index cheap and make contention
// between parallel per-view alignment workers unlikely.
const bimapShards = 16

// Bimap is a page-wise bidirectional map between virtual pages and file
// (physical) pages of a single backing file — the stand-in for the Boost
// bimap of §2.5. The forward direction (virtual → file page) is unique;
// the reverse direction is multi-valued because several partial views may
// map the same physical page.
//
// The bimap is built once from a parsed maps file before an update batch
// and then "maintained from user-space during the update process": Add and
// Remove keep both directions consistent while pages are rewired.
//
// Concurrency: both directions are lock-sharded (virtual pages by VPN,
// file pages by page number), so alignment workers handling different
// views mutate and read the bimap concurrently. Like per-region
// translation state in general, per-view entries are naturally
// independent: a virtual page belongs to exactly one view, so callers
// must serialize operations on the same VPN externally (one worker per
// view does exactly that), while reverse-direction reads (MappedIn,
// VirtualPages) and cross-view list updates are kept consistent by the
// file-page shard locks.
type Bimap struct {
	v2p [bimapShards]vpnShard
	p2v [bimapShards]fpShard
}

type vpnShard struct {
	mu sync.Mutex
	m  map[uint64]int64 // virtual page number -> file page
}

type fpShard struct {
	mu sync.Mutex
	m  map[int64][]uint64 // file page -> virtual page numbers
}

// NewBimap returns an empty bimap.
func NewBimap() *Bimap {
	b := &Bimap{}
	for i := range b.v2p {
		b.v2p[i].m = make(map[uint64]int64)
	}
	for i := range b.p2v {
		b.p2v[i].m = make(map[int64][]uint64)
	}
	return b
}

func (b *Bimap) vshard(vpn uint64) *vpnShard {
	return &b.v2p[vpn&(bimapShards-1)]
}

func (b *Bimap) pshard(fp int64) *fpShard {
	return &b.p2v[uint64(fp)&(bimapShards-1)]
}

// BuildBimap materializes the page-wise mapping of every area of mappings
// that is backed by the file with the given inode. pageSize is the page
// granularity (4096 throughout this repository).
func BuildBimap(mappings []Mapping, inode uint64, pageSize int) *Bimap {
	b := NewBimap()
	for _, m := range mappings {
		if m.Inode != inode {
			continue
		}
		pages := m.Pages(pageSize)
		firstVPN := m.Start / uint64(pageSize)
		firstFile := int64(m.Offset / uint64(pageSize))
		for i := 0; i < pages; i++ {
			b.Add(firstVPN+uint64(i), firstFile+int64(i))
		}
	}
	return b
}

// Add records that virtual page vpn maps file page fp, replacing any
// previous mapping of vpn.
func (b *Bimap) Add(vpn uint64, fp int64) {
	vs := b.vshard(vpn)
	vs.mu.Lock()
	old, had := vs.m[vpn]
	vs.m[vpn] = fp
	vs.mu.Unlock()
	if had {
		b.dropReverse(old, vpn)
	}
	ps := b.pshard(fp)
	ps.mu.Lock()
	ps.m[fp] = append(ps.m[fp], vpn)
	ps.mu.Unlock()
}

// Remove forgets the mapping of virtual page vpn. It reports whether the
// page was mapped.
func (b *Bimap) Remove(vpn uint64) bool {
	vs := b.vshard(vpn)
	vs.mu.Lock()
	fp, ok := vs.m[vpn]
	if ok {
		delete(vs.m, vpn)
	}
	vs.mu.Unlock()
	if !ok {
		return false
	}
	b.dropReverse(fp, vpn)
	return true
}

func (b *Bimap) dropReverse(fp int64, vpn uint64) {
	ps := b.pshard(fp)
	ps.mu.Lock()
	defer ps.mu.Unlock()
	vs := ps.m[fp]
	for i, v := range vs {
		if v == vpn {
			vs[i] = vs[len(vs)-1]
			vs = vs[:len(vs)-1]
			break
		}
	}
	if len(vs) == 0 {
		delete(ps.m, fp)
	} else {
		ps.m[fp] = vs
	}
}

// FilePage returns the file page mapped at virtual page vpn.
func (b *Bimap) FilePage(vpn uint64) (int64, bool) {
	vs := b.vshard(vpn)
	vs.mu.Lock()
	defer vs.mu.Unlock()
	fp, ok := vs.m[vpn]
	return fp, ok
}

// VirtualPages returns the virtual pages that map file page fp. The
// returned slice is the caller's to keep (a private copy — the live list
// may be mutated concurrently by other views' alignment workers).
func (b *Bimap) VirtualPages(fp int64) []uint64 {
	ps := b.pshard(fp)
	ps.mu.Lock()
	defer ps.mu.Unlock()
	vs := ps.m[fp]
	if len(vs) == 0 {
		return nil
	}
	out := make([]uint64, len(vs))
	copy(out, vs)
	return out
}

// MappedIn reports whether file page fp is mapped anywhere inside the
// virtual page range [lo, hi), and returns the first such virtual page.
// Update alignment uses this to test "is page p already indexed by this
// partial view" (§2.4), with [lo, hi) being the view's virtual area.
// Concurrent mutations of other views' entries never change the outcome:
// the range filter only ever matches the calling view's own pages.
func (b *Bimap) MappedIn(fp int64, lo, hi uint64) (uint64, bool) {
	ps := b.pshard(fp)
	ps.mu.Lock()
	defer ps.mu.Unlock()
	for _, v := range ps.m[fp] {
		if v >= lo && v < hi {
			return v, true
		}
	}
	return 0, false
}

// Len returns the number of virtual pages currently recorded.
func (b *Bimap) Len() int {
	n := 0
	for i := range b.v2p {
		vs := &b.v2p[i]
		vs.mu.Lock()
		n += len(vs.m)
		vs.mu.Unlock()
	}
	return n
}
