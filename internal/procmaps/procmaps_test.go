package procmaps

import (
	"fmt"
	"strings"
	"testing"
	"testing/quick"

	"github.com/asv-db/asv/internal/vmsim"
)

const sample = `08048000-08056000 rw-s 00002000 03:0c 64593 /dev/shm/db
7f0000000000-7f0000004000 rw-p 00000000 00:01 0
7f0000004000-7f0000005000 rw-s 00000000 00:01 42 /dev/shm/col A
`

func TestParseSample(t *testing.T) {
	ms, err := Parse([]byte(sample))
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 3 {
		t.Fatalf("parsed %d mappings, want 3", len(ms))
	}
	m := ms[0]
	if m.Start != 0x08048000 || m.End != 0x08056000 {
		t.Errorf("range %#x-%#x", m.Start, m.End)
	}
	if m.Perm != "rw-s" || m.Offset != 0x2000 || m.Dev != "03:0c" ||
		m.Inode != 64593 || m.Path != "/dev/shm/db" {
		t.Errorf("fields: %+v", m)
	}
	if ms[1].Inode != 0 || ms[1].Path != "" {
		t.Errorf("anon line: %+v", ms[1])
	}
	// Path with a space is preserved verbatim.
	if ms[2].Path != "/dev/shm/col A" {
		t.Errorf("spaced path: %q", ms[2].Path)
	}
}

func TestParseEmpty(t *testing.T) {
	ms, err := Parse(nil)
	if err != nil || len(ms) != 0 {
		t.Fatalf("Parse(nil) = %v, %v", ms, err)
	}
}

func TestParseNoTrailingNewline(t *testing.T) {
	ms, err := Parse([]byte("1000-2000 rw-p 00000000 00:01 0"))
	if err != nil || len(ms) != 1 {
		t.Fatalf("got %v, %v", ms, err)
	}
	if ms[0].Start != 0x1000 || ms[0].End != 0x2000 {
		t.Fatalf("range %#x-%#x", ms[0].Start, ms[0].End)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"zzzz-2000 rw-p 00000000 00:01 0",                    // bad hex
		"1000:2000 rw-p 00000000 00:01 0",                    // wrong separator
		"2000-1000 rw-p 00000000 00:01 0",                    // inverted range
		"1000-2000 rw 00000000 00:01 0",                      // short perms
		"1000-2000 rw-p xyz 00:01 0",                         // bad offset
		"1000-2000 rw-p 00000000 00:01 nonum",                // bad inode
		"1000-2000 rw-p 00000000 00:01",                      // truncated
		"ffffffffffffffff0-0 rw-p 0 00:01 0",                 // hex overflow
		"1000-2000 rw-p 00000000 00:01 99999999999999999999", // dec overflow
	}
	for _, s := range bad {
		if _, err := Parse([]byte(s)); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", s)
		}
	}
}

func TestMappingPages(t *testing.T) {
	m := Mapping{Start: 0x1000, End: 0x5000}
	if got := m.Pages(4096); got != 4 {
		t.Fatalf("Pages = %d, want 4", got)
	}
}

// Round-trip: whatever vmsim renders, we parse back to the same layout.
func TestRoundTripWithVmsim(t *testing.T) {
	k := vmsim.NewKernel(0)
	f, err := k.CreateFile("col0", 64)
	if err != nil {
		t.Fatal(err)
	}
	as := k.NewAddressSpace()
	addr, err := as.MmapAnon(64)
	if err != nil {
		t.Fatal(err)
	}
	// Scattered rewirings to force interesting VMA structure.
	for i := 0; i < 10; i++ {
		if err := as.MmapFileFixed(addr+vmsim.Addr(3*i*vmsim.PageSize), f, 6*i, 2); err != nil {
			t.Fatal(err)
		}
	}

	ms, err := Parse(as.RenderMaps())
	if err != nil {
		t.Fatal(err)
	}
	var fromSim []Mapping
	as.EachVMA(func(v vmsim.VMA) bool {
		fromSim = append(fromSim, Mapping{Start: uint64(v.Start()), End: uint64(v.End())})
		return true
	})
	if len(ms) != len(fromSim) {
		t.Fatalf("parsed %d mappings, sim has %d VMAs", len(ms), len(fromSim))
	}
	for i := range ms {
		if ms[i].Start != fromSim[i].Start || ms[i].End != fromSim[i].End {
			t.Errorf("mapping %d: parsed %#x-%#x, sim %#x-%#x",
				i, ms[i].Start, ms[i].End, fromSim[i].Start, fromSim[i].End)
		}
	}
	// File-backed lines carry the right inode and offset.
	for _, m := range ms {
		if m.Path == "/dev/shm/col0" {
			if m.Inode != f.Inode() {
				t.Errorf("inode %d, want %d", m.Inode, f.Inode())
			}
			if m.Offset%vmsim.PageSize != 0 {
				t.Errorf("unaligned offset %#x", m.Offset)
			}
		}
	}
}

// Property: rendering N random mappings and parsing yields N mappings with
// identical address ranges.
func TestQuickRenderParse(t *testing.T) {
	f := func(starts []uint32) bool {
		var sb strings.Builder
		var want []uint64
		used := map[uint64]bool{}
		for _, s := range starts {
			lo := (uint64(s) + 1) * 0x10000
			if used[lo] {
				continue
			}
			used[lo] = true
			hi := lo + 0x3000
			fmt.Fprintf(&sb, "%012x-%012x rw-s %08x 00:01 7 /dev/shm/x\n", lo, hi, uint64(s)*4096)
			want = append(want, lo)
		}
		ms, err := Parse([]byte(sb.String()))
		if err != nil || len(ms) != len(want) {
			return false
		}
		for i := range ms {
			if ms[i].Start != want[i] || ms[i].End != want[i]+0x3000 || ms[i].Inode != 7 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func BenchmarkParse10kLines(b *testing.B) {
	var sb strings.Builder
	for i := 0; i < 10000; i++ {
		lo := uint64(0x7f0000000000 + i*0x2000)
		fmt.Fprintf(&sb, "%012x-%012x rw-s %08x 00:01 42 /dev/shm/col\n", lo, lo+0x1000, i*4096)
	}
	data := []byte(sb.String())
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Parse(data); err != nil {
			b.Fatal(err)
		}
	}
}
