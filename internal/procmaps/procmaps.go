// Package procmaps parses the /proc/PID/maps text format and materializes
// page-wise bidirectional mappings between virtual and physical (file)
// pages.
//
// The paper's update path (§2.5) needs the current virtual→physical mapping
// of every view to decide which view pages to add or remove. The Linux
// kernel exposes that mapping only as the text file /proc/PID/maps, so the
// system parses the file once per update batch and materializes it
// page-wise in a bidirectional map (the paper uses a Boost bimap), which is
// then maintained from user space while the batch is applied. This package
// implements both the parser and the bimap. In this repository the maps
// text comes from vmsim.AddressSpace.RenderMaps, which emits the same
// format as the kernel.
//
// Parsing is deliberately implemented as a single allocation-light pass:
// the paper observes that "parsing this file is costly if a sufficient
// amount of mappings exist", and Figure 7 measures exactly this cost — it
// must scale with the number of lines (VMAs) and nothing else.
package procmaps

import (
	"errors"
	"fmt"
)

// Mapping is one parsed line of a maps file: a virtual memory area.
type Mapping struct {
	Start, End uint64 // virtual byte addresses, [Start, End)
	Perm       string // e.g. "rw-s"
	Offset     uint64 // byte offset into the backing file
	Dev        string // device, e.g. "00:01"
	Inode      uint64 // 0 for anonymous areas
	Path       string // "" for anonymous areas
}

// Pages returns the length of the mapping in whole pages of the given size.
func (m Mapping) Pages(pageSize int) int {
	return int((m.End - m.Start) / uint64(pageSize))
}

// ErrSyntax is wrapped by all parse errors.
var ErrSyntax = errors.New("procmaps: syntax error")

// Parse parses the complete contents of a maps file.
func Parse(data []byte) ([]Mapping, error) {
	// Pre-size: count lines once to avoid append growth on large files.
	lines := 0
	for _, b := range data {
		if b == '\n' {
			lines++
		}
	}
	out := make([]Mapping, 0, lines)

	pos, lineNo := 0, 0
	for pos < len(data) {
		lineNo++
		m, next, err := parseLine(data, pos)
		if err != nil {
			return nil, fmt.Errorf("%w: line %d: %v", ErrSyntax, lineNo, err)
		}
		out = append(out, m)
		pos = next
	}
	return out, nil
}

// parseLine parses one line starting at pos and returns the position just
// past its trailing newline (or end of input).
func parseLine(d []byte, pos int) (Mapping, int, error) {
	var m Mapping
	var err error

	if m.Start, pos, err = parseHex(d, pos); err != nil {
		return m, pos, fmt.Errorf("start address: %v", err)
	}
	if pos, err = expect(d, pos, '-'); err != nil {
		return m, pos, err
	}
	if m.End, pos, err = parseHex(d, pos); err != nil {
		return m, pos, fmt.Errorf("end address: %v", err)
	}
	if m.End <= m.Start {
		return m, pos, fmt.Errorf("empty range %x-%x", m.Start, m.End)
	}
	if pos, err = expect(d, pos, ' '); err != nil {
		return m, pos, err
	}

	permStart := pos
	for pos < len(d) && d[pos] != ' ' {
		pos++
	}
	m.Perm = string(d[permStart:pos])
	if len(m.Perm) != 4 {
		return m, pos, fmt.Errorf("perms %q: want 4 characters", m.Perm)
	}
	if pos, err = expect(d, pos, ' '); err != nil {
		return m, pos, err
	}

	if m.Offset, pos, err = parseHex(d, pos); err != nil {
		return m, pos, fmt.Errorf("offset: %v", err)
	}
	if pos, err = expect(d, pos, ' '); err != nil {
		return m, pos, err
	}

	devStart := pos
	for pos < len(d) && d[pos] != ' ' {
		pos++
	}
	m.Dev = string(d[devStart:pos])
	if pos, err = expect(d, pos, ' '); err != nil {
		return m, pos, err
	}

	if m.Inode, pos, err = parseDec(d, pos); err != nil {
		return m, pos, fmt.Errorf("inode: %v", err)
	}

	// Optional pathname, separated by one or more spaces.
	for pos < len(d) && d[pos] == ' ' {
		pos++
	}
	pathStart := pos
	for pos < len(d) && d[pos] != '\n' {
		pos++
	}
	if pathStart < pos {
		m.Path = string(d[pathStart:pos])
	}
	if pos < len(d) { // consume newline
		pos++
	}
	return m, pos, nil
}

func expect(d []byte, pos int, c byte) (int, error) {
	if pos >= len(d) || d[pos] != c {
		got := "EOF"
		if pos < len(d) {
			got = fmt.Sprintf("%q", d[pos])
		}
		return pos, fmt.Errorf("expected %q, got %s", c, got)
	}
	return pos + 1, nil
}

func parseHex(d []byte, pos int) (uint64, int, error) {
	start := pos
	var v uint64
	for pos < len(d) {
		c := d[pos]
		var digit uint64
		switch {
		case c >= '0' && c <= '9':
			digit = uint64(c - '0')
		case c >= 'a' && c <= 'f':
			digit = uint64(c-'a') + 10
		case c >= 'A' && c <= 'F':
			digit = uint64(c-'A') + 10
		default:
			if pos == start {
				return 0, pos, fmt.Errorf("no hex digits at byte %d", pos)
			}
			return v, pos, nil
		}
		if v > (^uint64(0))>>4 {
			return 0, pos, errors.New("hex overflow")
		}
		v = v<<4 | digit
		pos++
	}
	if pos == start {
		return 0, pos, errors.New("no hex digits at EOF")
	}
	return v, pos, nil
}

func parseDec(d []byte, pos int) (uint64, int, error) {
	start := pos
	var v uint64
	for pos < len(d) && d[pos] >= '0' && d[pos] <= '9' {
		digit := uint64(d[pos] - '0')
		if v > (^uint64(0)-digit)/10 {
			return 0, pos, errors.New("decimal overflow")
		}
		v = v*10 + digit
		pos++
	}
	if pos == start {
		return 0, pos, errors.New("no decimal digits")
	}
	return v, pos, nil
}
