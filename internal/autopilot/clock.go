package autopilot

import (
	"sync"
	"time"
)

// Clock abstracts time for the autopilot so every behaviour — the
// MaxFlushLatency deadline, the maintenance ticker, the flush-latency
// percentiles — is testable without sleeping. Production code uses the
// real clock; tests inject a ManualClock and advance it explicitly.
type Clock interface {
	// Now returns the current time.
	Now() time.Time
	// After returns a channel that delivers one tick once d has elapsed.
	After(d time.Duration) <-chan time.Time
	// NewTicker returns a ticker firing every d.
	NewTicker(d time.Duration) Ticker
}

// Ticker is the minimal time.Ticker surface the autopilot needs.
type Ticker interface {
	C() <-chan time.Time
	Stop()
}

// realClock is the production Clock backed by package time.
type realClock struct{}

func (realClock) Now() time.Time                         { return time.Now() }
func (realClock) After(d time.Duration) <-chan time.Time { return time.After(d) }
func (realClock) NewTicker(d time.Duration) Ticker       { return realTicker{time.NewTicker(d)} }

type realTicker struct{ t *time.Ticker }

func (t realTicker) C() <-chan time.Time { return t.t.C }
func (t realTicker) Stop()               { t.t.Stop() }

// ManualClock is a deterministic Clock for tests: time only moves when
// Advance is called, and pending timers/tickers fire synchronously during
// the advance. BlockUntilTimers lets a test wait (without sleeping) until
// the code under test has armed its timer, closing the race between
// arming and advancing.
type ManualClock struct {
	mu      sync.Mutex
	cond    *sync.Cond
	now     time.Time
	timers  []*manualTimer
	tickers []*manualTicker
}

// NewManualClock returns a ManualClock starting at the given instant.
func NewManualClock(start time.Time) *ManualClock {
	c := &ManualClock{now: start}
	c.cond = sync.NewCond(&c.mu)
	return c
}

type manualTimer struct {
	deadline time.Time
	ch       chan time.Time
}

type manualTicker struct {
	clock  *ManualClock
	period time.Duration
	next   time.Time
	ch     chan time.Time
	done   bool
}

func (t *manualTicker) C() <-chan time.Time { return t.ch }

func (t *manualTicker) Stop() {
	t.clock.mu.Lock()
	t.done = true
	t.clock.mu.Unlock()
}

// Now returns the manual instant.
func (c *ManualClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// After arms a one-shot timer d from the current manual instant.
func (c *ManualClock) After(d time.Duration) <-chan time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	t := &manualTimer{deadline: c.now.Add(d), ch: make(chan time.Time, 1)}
	if d <= 0 {
		t.ch <- c.now
	} else {
		c.timers = append(c.timers, t)
	}
	c.cond.Broadcast()
	return t.ch
}

// NewTicker arms a recurring ticker with the given period.
func (c *ManualClock) NewTicker(d time.Duration) Ticker {
	if d <= 0 {
		panic("autopilot: non-positive ticker period")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	t := &manualTicker{clock: c, period: d, next: c.now.Add(d), ch: make(chan time.Time, 1)}
	c.tickers = append(c.tickers, t)
	c.cond.Broadcast()
	return t
}

// Advance moves the manual instant forward by d, firing every timer and
// ticker whose deadline is reached (tickers coalesce missed periods into
// one tick, like time.Ticker under a slow receiver).
func (c *ManualClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(d)
	kept := c.timers[:0]
	for _, t := range c.timers {
		if !t.deadline.After(c.now) {
			t.ch <- c.now
			continue
		}
		kept = append(kept, t)
	}
	c.timers = kept
	for _, t := range c.tickers {
		if t.done || t.next.After(c.now) {
			continue
		}
		select {
		case t.ch <- c.now:
		default: // receiver lags; coalesce
		}
		for !t.next.After(c.now) {
			t.next = t.next.Add(t.period)
		}
	}
}

// Timers returns the number of armed one-shot timers.
func (c *ManualClock) Timers() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.timers)
}

// BlockUntilTimers blocks until at least n one-shot timers are armed —
// the handshake a test needs before Advance, so the deadline it is about
// to trigger was computed from the pre-advance instant.
func (c *ManualClock) BlockUntilTimers(n int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for len(c.timers) < n {
		c.cond.Wait()
	}
}
