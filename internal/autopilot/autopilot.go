// Package autopilot is the engine's background maintenance subsystem: it
// moves every maintenance action the paper performs inline — flush, §2.4
// alignment, view lifecycle — off the request path and onto a per-engine
// pilot goroutine, the way server-shaped systems (Virtuoso's asynchronous
// VM machinery, daemon-driven page migration in tiered-memory buffer
// managers) keep their foreground paths hot.
//
// The pilot has three coordinated duties:
//
//  1. Bounded-latency write coalescing: Update calls enqueue into sharded
//     intake buffers and return immediately; the pilot applies and aligns
//     the queued writes as one group commit when CoalesceCount /
//     CoalesceBytes is reached or a MaxFlushLatency deadline expires —
//     lone writes under concurrent readers become group commits without
//     caller-side UpdateBatch.
//  2. Adaptive parallelism: an EWMA cost model (CostModel) learns scan
//     and alignment throughput and picks a per-operation worker count
//     from routed-page and dirty-page counts, replacing the static
//     Parallelism fan-out.
//  3. Temperature-driven view lifecycle: on every maintenance tick the
//     pilot reads per-view access recency/frequency (exported by viewset
//     from its LRU clock), evicts cold partial views, rebuilds
//     fragmented ones, and pre-warms soft-TLBs — each action in its own
//     exclusive-room slice acquired through the room lock's existing
//     round-robin handover, so readers and writers keep flowing between
//     slices.
//
// All time flows through an injectable Clock, so every behaviour is
// deterministic in tests (ManualClock) without a single sleep.
package autopilot

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/asv-db/asv/internal/obs"
	"github.com/asv-db/asv/internal/storage"
)

// Defaults for Config's zero values.
const (
	defaultCoalesceCount   = 256
	defaultCoalesceBytes   = 1 << 20
	defaultMaxFlushLatency = 5 * time.Millisecond
	defaultMaintain        = 50 * time.Millisecond
	defaultColdTicks       = 4096
	defaultRebuildFrag     = 0.5
	defaultMinRebuildPages = 16
	defaultWarmHottest     = 2
	defaultWorkerOverhead  = 25 * time.Microsecond
	defaultTierHighWater   = 0.9
	defaultTierLowWater    = 0.7
	// tierSlowdownGate is the measured scan slowdown (CostModel, relative
	// to the engine's demonstrated floor) beyond which the pilot treats
	// its own demotions as hurting reads: demotion batches are halved and
	// fragmented views are rebuilt more eagerly.
	tierSlowdownGate = 1.25
	// tierPressureColdScale is how strongly hot-tier pressure accelerates
	// eviction: at full pressure the effective ColdTicks halves.
	tierPressureColdScale = 0.5
	// writeBytes is the queued size of one Write (row + value). Updates
	// are fixed-size today, so CoalesceBytes is effectively a second
	// count bound; the knob exists so variable-size updates slot in
	// without an API change.
	writeBytes = 16
	// backpressureFactor scales CoalesceCount into the default MaxQueued
	// cap: a writer that outruns the pilot by this factor drains
	// cooperatively instead of growing the intake without bound.
	backpressureFactor = 8
	// latencyRing caps how many quantile-derived samples FlushLatencies
	// synthesizes from the latency histogram — the retention the
	// deprecated sample API used to have.
	latencyRing = 4096
)

// ErrStopped is returned by Enqueue after the pilot has been stopped
// (the engine is closing).
var ErrStopped = errors.New("autopilot: stopped")

// Write is one fire-and-forget row overwrite queued through the pilot.
type Write struct {
	Row   int
	Value uint64
}

// ViewTemp is one partial view's temperature, exported by the engine from
// the view set's LRU clock. Handle is opaque to the pilot; the engine
// re-validates it under the exclusive room before acting on it.
type ViewTemp struct {
	Handle   any
	LastUsed uint64  // routing tick of the most recent hit
	Uses     uint64  // total routing hits
	Pages    int     // physical pages indexed
	Frag     float64 // 0 = pages in ascending order, 1 = fully shuffled
	Pinned   bool    // exempt from tier demotion (not from eviction)
}

// Target is the engine surface the pilot drives. Implementations take
// their own locks; the pilot never calls a Target method while holding
// one of its own locks other than the drain mutex.
type Target interface {
	// ApplyWrites applies a coalesced group of writes to the column and
	// pending buffers in one update-room entry (group commit).
	ApplyWrites(ws []Write) error
	// AlignPending flushes the applied-but-unaligned updates through §2.4
	// alignment in one exclusive-room slice.
	AlignPending() error
	// ViewTemperatures snapshots the LRU clock and per-view temperatures.
	ViewTemperatures() (clock uint64, temps []ViewTemp)
	// EvictViews releases the given cold views in one exclusive-room
	// slice, skipping handles that left the set since the snapshot. It
	// returns how many views were actually evicted.
	EvictViews(handles []any) (int, error)
	// RebuildView rebuilds one fragmented view from the column in its own
	// exclusive-room slice; false means the handle was no longer a set
	// member.
	RebuildView(handle any) (bool, error)
	// WarmView re-resolves one hot view's soft-TLB, returning the number
	// of page translations that were cold.
	WarmView(handle any) (int, error)
}

// TierInfo is a hot-tier occupancy snapshot — the simulated memory
// pressure the lifecycle's feedback loop runs on.
type TierInfo struct {
	HotFrames  int // file pages currently in the hot tier
	ColdFrames int // file pages currently in the capacity tier
	HotBudget  int // configured hot-tier frame budget
}

// Occupancy returns hot frames as a fraction of the budget (> 1 means
// the hot tier is over budget).
func (i TierInfo) Occupancy() float64 {
	if i.HotBudget <= 0 {
		return 0
	}
	return float64(i.HotFrames) / float64(i.HotBudget)
}

// TierTarget is the optional tier-migration surface of a Target. The
// pilot type-asserts for it on every maintenance tick: engines without a
// second tier (and pre-tiering test fakes) simply don't implement it and
// the demotion duty stays off.
type TierTarget interface {
	// TierInfo snapshots hot-tier occupancy; ok is false when the engine
	// runs single-tier.
	TierInfo() (info TierInfo, ok bool)
	// DemotePages demotes pages of the given views (coldest-first order,
	// chosen by the pilot) to the capacity tier, stopping after maxPages
	// demotions. It returns how many pages were actually demoted; handles
	// that left the set, pinned views and already-cold pages are skipped.
	DemotePages(handles []any, maxPages int) (int, error)
}

// Config parameterizes a Pilot. The zero value of every field selects the
// documented default; negative values disable optional duties
// (MaintainInterval < 0 disables the lifecycle ticker, ColdTicks < 0
// disables eviction, RebuildFrag < 0 disables rebuilds, WarmHottest < 0
// disables TLB pre-warming).
type Config struct {
	// CoalesceCount flushes the intake once this many writes are queued
	// (default 256).
	CoalesceCount int
	// CoalesceBytes flushes the intake once the queued writes exceed this
	// many bytes (default 1 MiB; writes are 16 bytes each today).
	CoalesceBytes int
	// MaxFlushLatency bounds how long an accepted write may stay queued
	// before the pilot applies and aligns it (default 5ms).
	MaxFlushLatency time.Duration
	// MaxQueued is the backpressure cap: a writer that finds this many
	// writes queued drains cooperatively instead of queueing more
	// (default 8 × CoalesceCount).
	MaxQueued int
	// MaintainInterval is the view-lifecycle tick period (default 50ms;
	// < 0 disables the ticker).
	MaintainInterval time.Duration
	// ColdTicks evicts a partial view not routed to for this many LRU
	// clock ticks (default 4096; < 0 disables eviction).
	ColdTicks int
	// RebuildFrag rebuilds a partial view whose page order fragmentation
	// reaches this fraction (default 0.5; < 0 disables rebuilds).
	RebuildFrag float64
	// MinRebuildPages skips rebuilding views smaller than this (default 16).
	MinRebuildPages int
	// WarmHottest pre-warms the soft-TLBs of this many most-used views per
	// tick (default 2; < 0 disables warming).
	WarmHottest int
	// TierHighWater starts the demotion duty once hot-tier occupancy
	// (hot frames / budget) reaches this fraction (default 0.9; < 0
	// disables the duty even on a TierTarget). Only consulted when the
	// target implements TierTarget and reports an active tier.
	TierHighWater float64
	// TierLowWater is the occupancy the demotion duty drives the hot tier
	// back down to once triggered (default 0.7). The [low, high] band is
	// also the pressure scale that accelerates cold-view eviction:
	// occupancy at TierHighWater halves the effective ColdTicks.
	TierLowWater float64
	// WorkerOverhead is the assumed per-worker startup cost the adaptive
	// parallelism model amortizes (default 25µs).
	WorkerOverhead time.Duration
	// Shards is the intake shard count (0 = GOMAXPROCS); writes hash by
	// physical page like the engine's pending buffers.
	Shards int
	// Clock injects time; nil selects the real clock.
	Clock Clock
	// OnFlush, when non-nil, observes every coalesced flush (called from
	// the draining goroutine).
	OnFlush func(FlushInfo)
	// OnMaintain, when non-nil, observes every maintenance tick (called
	// from the pilot goroutine).
	OnMaintain func(MaintainReport)
}

// Validate rejects nonsensical knob combinations.
func (c *Config) Validate() error {
	if c.CoalesceCount < 0 {
		return fmt.Errorf("autopilot: negative CoalesceCount %d", c.CoalesceCount)
	}
	if c.CoalesceBytes < 0 {
		return fmt.Errorf("autopilot: negative CoalesceBytes %d", c.CoalesceBytes)
	}
	if c.MaxFlushLatency < 0 {
		return fmt.Errorf("autopilot: negative MaxFlushLatency %s", c.MaxFlushLatency)
	}
	if c.MaxQueued < 0 {
		return fmt.Errorf("autopilot: negative MaxQueued %d", c.MaxQueued)
	}
	if c.RebuildFrag > 1 {
		return fmt.Errorf("autopilot: RebuildFrag %g > 1", c.RebuildFrag)
	}
	high, low := c.TierHighWater, c.TierLowWater
	if high == 0 {
		high = defaultTierHighWater
	}
	if low == 0 {
		low = defaultTierLowWater
	}
	if high > 1 {
		return fmt.Errorf("autopilot: TierHighWater %g > 1", high)
	}
	if high > 0 && low > high {
		return fmt.Errorf("autopilot: TierLowWater %g above TierHighWater %g", low, high)
	}
	return nil
}

// withDefaults resolves zero values to the documented defaults.
func (c Config) withDefaults() Config {
	if c.CoalesceCount == 0 {
		c.CoalesceCount = defaultCoalesceCount
	}
	if c.CoalesceBytes == 0 {
		c.CoalesceBytes = defaultCoalesceBytes
	}
	if c.MaxFlushLatency == 0 {
		c.MaxFlushLatency = defaultMaxFlushLatency
	}
	if c.MaxQueued == 0 {
		c.MaxQueued = backpressureFactor * c.CoalesceCount
	}
	if c.MaintainInterval == 0 {
		c.MaintainInterval = defaultMaintain
	}
	if c.ColdTicks == 0 {
		c.ColdTicks = defaultColdTicks
	}
	if c.RebuildFrag == 0 {
		c.RebuildFrag = defaultRebuildFrag
	}
	if c.MinRebuildPages == 0 {
		c.MinRebuildPages = defaultMinRebuildPages
	}
	if c.WarmHottest == 0 {
		c.WarmHottest = defaultWarmHottest
	}
	if c.TierHighWater == 0 {
		c.TierHighWater = defaultTierHighWater
	}
	if c.TierLowWater == 0 {
		c.TierLowWater = defaultTierLowWater
	}
	if c.WorkerOverhead == 0 {
		c.WorkerOverhead = defaultWorkerOverhead
	}
	if c.Shards <= 0 {
		c.Shards = runtime.GOMAXPROCS(0)
	}
	if c.Clock == nil {
		c.Clock = realClock{}
	}
	return c
}

// FlushReason says what triggered a coalesced flush.
type FlushReason int

const (
	// FlushCount: CoalesceCount writes were queued.
	FlushCount FlushReason = iota
	// FlushBytes: CoalesceBytes of writes were queued.
	FlushBytes
	// FlushDeadline: the oldest queued write hit MaxFlushLatency.
	FlushDeadline
	// FlushBackpressure: a writer found MaxQueued writes queued and
	// drained cooperatively.
	FlushBackpressure
	// FlushSync: a synchronous caller (Sync/FlushUpdates) drained.
	FlushSync
	// FlushStop: the pilot drained on shutdown (writes are applied so no
	// accepted update is lost; alignment is skipped, the views are about
	// to be released).
	FlushStop
)

// String renders the reason for logs.
func (r FlushReason) String() string {
	switch r {
	case FlushCount:
		return "count"
	case FlushBytes:
		return "bytes"
	case FlushDeadline:
		return "deadline"
	case FlushBackpressure:
		return "backpressure"
	case FlushSync:
		return "sync"
	case FlushStop:
		return "stop"
	default:
		return fmt.Sprintf("FlushReason(%d)", int(r))
	}
}

// FlushInfo describes one coalesced flush for the OnFlush hook.
type FlushInfo struct {
	Writes  int
	Reason  FlushReason
	Latency time.Duration // oldest queued write's enqueue → flush done
	Err     error
}

// MaintainReport describes one maintenance tick for the OnMaintain hook.
type MaintainReport struct {
	Views        int     // partial views inspected
	Evicted      int     // cold views released
	Rebuilt      int     // fragmented views rebuilt
	WarmedPages  int     // cold TLB slots re-resolved on hot views
	PagesDemoted int     // pages moved to the capacity tier this tick
	TierPressure float64 // 0..1 position within the [low, high] water band
	Err          error
}

// Metrics is a snapshot of the pilot's cumulative counters.
type Metrics struct {
	Enqueued            uint64 // writes accepted by Enqueue
	Applied             uint64 // writes applied by coalesced flushes
	Flushes             uint64 // coalesced flushes (all reasons)
	CountFlushes        uint64
	ByteFlushes         uint64
	DeadlineFlushes     uint64
	BackpressureFlushes uint64
	SyncFlushes         uint64
	MaintenanceTicks    uint64
	ViewsEvicted        uint64
	ViewsRebuilt        uint64
	TLBPagesWarmed      uint64
	PagesDemoted        uint64 // pages moved to the capacity tier
}

// AvgCoalesce returns the mean writes per coalesced flush.
func (m Metrics) AvgCoalesce() float64 {
	if m.Flushes == 0 {
		return 0
	}
	return float64(m.Applied) / float64(m.Flushes)
}

// intakeShard is one lock-striped intake buffer; writes hash here by
// physical page, mirroring the engine's pending-buffer sharding so
// same-row (same-page) writes keep their arrival order.
type intakeShard struct {
	mu sync.Mutex
	ws []Write
	_  [32]byte
}

// Pilot is the per-engine background maintenance goroutine plus the
// intake buffers feeding it.
type Pilot struct {
	cfg    Config
	clock  Clock
	target Target
	rows   int
	model  *CostModel

	shards []intakeShard
	queued atomic.Int64

	oldestMu  sync.Mutex
	oldest    time.Time
	hasOldest bool

	// drainMu serializes drains (pilot, cooperative writers, Sync); it is
	// acquired before any Target call and never while holding a shard or
	// metric lock.
	drainMu sync.Mutex

	wake        chan struct{}
	stopCh      chan struct{}
	done        chan struct{}
	stopped     atomic.Bool
	maintTicker Ticker // nil when MaintainInterval < 0

	errMu    sync.Mutex
	firstErr error

	mEnqueued            atomic.Uint64
	mApplied             atomic.Uint64
	mFlushes             atomic.Uint64
	mCountFlushes        atomic.Uint64
	mByteFlushes         atomic.Uint64
	mDeadlineFlushes     atomic.Uint64
	mBackpressureFlushes atomic.Uint64
	mSyncFlushes         atomic.Uint64
	mMaintTicks          atomic.Uint64
	mEvicted             atomic.Uint64
	mRebuilt             atomic.Uint64
	mWarmed              atomic.Uint64
	mPagesDemoted        atomic.Uint64

	// latHist/batchHist replace the old bounded sample ring: lock-free
	// log₂ histograms of flush latency (ns) and coalesce batch size.
	// Handles stored once here, bumped from drain.
	latHist   *obs.Histogram
	batchHist *obs.Histogram
}

// Start validates the configuration, resolves defaults and launches the
// pilot goroutine for an engine with the given row count.
func Start(target Target, cfg Config, rows int) (*Pilot, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	p := &Pilot{
		cfg:       cfg,
		clock:     cfg.Clock,
		target:    target,
		rows:      rows,
		model:     NewCostModel(cfg.WorkerOverhead),
		shards:    make([]intakeShard, cfg.Shards),
		wake:      make(chan struct{}, 1),
		stopCh:    make(chan struct{}),
		done:      make(chan struct{}),
		latHist:   new(obs.Histogram),
		batchHist: new(obs.Histogram),
	}
	if cfg.MaintainInterval > 0 {
		// Created here, not in the goroutine, so the ticker exists the
		// moment Start returns — a deterministic test may advance its
		// ManualClock immediately.
		p.maintTicker = cfg.Clock.NewTicker(cfg.MaintainInterval)
	}
	go p.loop()
	return p, nil
}

// Model returns the pilot's adaptive-parallelism cost model; the engine
// consults it on the scan and alignment paths.
func (p *Pilot) Model() *CostModel { return p.model }

// Queued returns the number of accepted-but-unapplied writes.
func (p *Pilot) Queued() int { return int(p.queued.Load()) }

// Err returns the first asynchronous flush error, if any.
func (p *Pilot) Err() error {
	p.errMu.Lock()
	defer p.errMu.Unlock()
	return p.firstErr
}

// Enqueue accepts one fire-and-forget write: it validates the row, queues
// the write in its page's intake shard and returns. The write is applied
// and aligned by the pilot within MaxFlushLatency (sooner when the
// coalesce thresholds fill); writers that outrun the pilot past MaxQueued
// drain cooperatively, bounding the intake.
func (p *Pilot) Enqueue(row int, value uint64) error {
	if p.stopped.Load() {
		return ErrStopped
	}
	if row < 0 || row >= p.rows {
		return fmt.Errorf("autopilot: row %d out of range [0,%d)", row, p.rows)
	}
	page := row / storage.ValuesPerPage
	sh := &p.shards[page%len(p.shards)]
	sh.mu.Lock()
	sh.ws = append(sh.ws, Write{Row: row, Value: value})
	sh.mu.Unlock()
	n := p.queued.Add(1)
	p.mEnqueued.Add(1)
	if n == 1 {
		p.oldestMu.Lock()
		p.oldest = p.clock.Now()
		p.hasOldest = true
		p.oldestMu.Unlock()
	}
	if p.stopped.Load() {
		// Stop raced this enqueue: its final drain may have collected the
		// shards before our append. Stop's store of `stopped` is ordered
		// before that drain's shard-mutex critical section, so an append
		// the drain missed is guaranteed to observe stopped here — drain
		// once more and the accepted write cannot strand in a dead
		// intake.
		p.drain(FlushStop, false)
		return p.takeErr()
	}
	if int(n) >= p.cfg.MaxQueued {
		// Cooperative backpressure: this writer becomes the group
		// committer instead of growing the queue without bound.
		p.drain(FlushBackpressure, true)
		return p.takeErr()
	}
	select {
	case p.wake <- struct{}{}:
	default:
	}
	return nil
}

// Sync drains the intake synchronously — apply plus §2.4 alignment — and
// returns the first error any flush (including asynchronous ones)
// encountered. The engine's read-your-writes barrier.
func (p *Pilot) Sync() error {
	p.drain(FlushSync, true)
	return p.takeErr()
}

// ApplyQueued drains the intake synchronously without aligning — for
// callers about to run alignment themselves (Engine.FlushUpdates).
func (p *Pilot) ApplyQueued() error {
	p.drain(FlushSync, false)
	return p.takeErr()
}

// takeErr consumes the sticky first error so synchronous callers see a
// flush failure exactly once.
func (p *Pilot) takeErr() error {
	p.errMu.Lock()
	defer p.errMu.Unlock()
	err := p.firstErr
	p.firstErr = nil
	return err
}

// Stop drains and applies the remaining intake (no accepted write is
// lost), stops the pilot goroutine and waits for it to exit. Idempotent.
func (p *Pilot) Stop() {
	if p.stopped.Swap(true) {
		<-p.done
		return
	}
	close(p.stopCh)
	<-p.done
}

// Metrics snapshots the cumulative counters.
func (p *Pilot) Metrics() Metrics {
	return Metrics{
		Enqueued:            p.mEnqueued.Load(),
		Applied:             p.mApplied.Load(),
		Flushes:             p.mFlushes.Load(),
		CountFlushes:        p.mCountFlushes.Load(),
		ByteFlushes:         p.mByteFlushes.Load(),
		DeadlineFlushes:     p.mDeadlineFlushes.Load(),
		BackpressureFlushes: p.mBackpressureFlushes.Load(),
		SyncFlushes:         p.mSyncFlushes.Load(),
		MaintenanceTicks:    p.mMaintTicks.Load(),
		ViewsEvicted:        p.mEvicted.Load(),
		ViewsRebuilt:        p.mRebuilt.Load(),
		TLBPagesWarmed:      p.mWarmed.Load(),
		PagesDemoted:        p.mPagesDemoted.Load(),
	}
}

// FlushLatencies synthesizes flush-latency samples (enqueue of the oldest
// queued write → flush complete) from the pilot's latency histogram: at
// most latencyRing samples, the k-th being the ((k+0.5)/n)-quantile, so
// Percentile over the result tracks the histogram's quantiles.
//
// Deprecated: the pilot no longer retains individual samples — values
// are quantized to the histogram's log₂ bucket bounds. Read the
// histogram directly via LatencyHistogram (or Engine.Telemetry's
// autopilot_flush_latency_ns) instead.
func (p *Pilot) FlushLatencies() []time.Duration {
	h := p.latHist.Snapshot()
	n := h.Count
	if n == 0 {
		return nil
	}
	if n > latencyRing {
		n = latencyRing
	}
	out := make([]time.Duration, n)
	for k := range out {
		out[k] = time.Duration(h.Quantile((float64(k) + 0.5) / float64(n)))
	}
	return out
}

// LatencyHistogram snapshots the flush-latency histogram (ns).
func (p *Pilot) LatencyHistogram() obs.HistogramSnapshot { return p.latHist.Snapshot() }

// Telemetry snapshots the pilot's counters and histograms as autopilot_*
// instruments for Engine.Telemetry.
func (p *Pilot) Telemetry() obs.Snapshot {
	s := obs.NewSnapshot()
	m := p.Metrics()
	s.AddCounter("autopilot_enqueued", m.Enqueued)
	s.AddCounter("autopilot_applied", m.Applied)
	s.AddCounter("autopilot_flushes", m.Flushes)
	s.AddCounter("autopilot_count_flushes", m.CountFlushes)
	s.AddCounter("autopilot_byte_flushes", m.ByteFlushes)
	s.AddCounter("autopilot_deadline_flushes", m.DeadlineFlushes)
	s.AddCounter("autopilot_backpressure_flushes", m.BackpressureFlushes)
	s.AddCounter("autopilot_sync_flushes", m.SyncFlushes)
	s.AddCounter("autopilot_maintenance_ticks", m.MaintenanceTicks)
	s.AddCounter("autopilot_views_evicted", m.ViewsEvicted)
	s.AddCounter("autopilot_views_rebuilt", m.ViewsRebuilt)
	s.AddCounter("autopilot_tlb_pages_warmed", m.TLBPagesWarmed)
	s.AddCounter("autopilot_pages_demoted", m.PagesDemoted)
	s.SetHistogram("autopilot_flush_latency_ns", p.latHist.Snapshot())
	s.SetHistogram("autopilot_coalesce_batch", p.batchHist.Snapshot())
	return s
}

// loop is the pilot goroutine: it reacts to intake wake-ups, arms the
// MaxFlushLatency deadline, and runs the lifecycle ticker.
func (p *Pilot) loop() {
	defer close(p.done)
	var maintC <-chan time.Time
	if p.maintTicker != nil {
		defer p.maintTicker.Stop()
		maintC = p.maintTicker.C()
	}
	var deadlineC <-chan time.Time
	for {
		select {
		case <-p.stopCh:
			p.drain(FlushStop, false)
			return
		case <-p.wake:
			n := int(p.queued.Load())
			if n == 0 {
				deadlineC = nil
				continue
			}
			if n >= p.cfg.CoalesceCount {
				p.drain(FlushCount, true)
				deadlineC = nil
				continue
			}
			if n*writeBytes >= p.cfg.CoalesceBytes {
				p.drain(FlushBytes, true)
				deadlineC = nil
				continue
			}
			if deadlineC == nil {
				deadlineC = p.clock.After(p.deadlineIn())
			}
		case <-deadlineC:
			deadlineC = nil
			if p.queued.Load() > 0 {
				p.drain(FlushDeadline, true)
			}
		case <-maintC:
			p.maintain()
		}
	}
}

// deadlineIn computes how much of MaxFlushLatency the oldest queued write
// has left.
func (p *Pilot) deadlineIn() time.Duration {
	p.oldestMu.Lock()
	oldest, ok := p.oldest, p.hasOldest
	p.oldestMu.Unlock()
	if !ok {
		return p.cfg.MaxFlushLatency
	}
	d := p.cfg.MaxFlushLatency - p.clock.Now().Sub(oldest)
	if d < 0 {
		d = 0
	}
	return d
}

// collect swaps every intake shard's buffer out under its lock and
// returns the concatenation in shard order (per-row order is preserved:
// a row's page hashes to exactly one shard).
func (p *Pilot) collect() ([]Write, time.Time) {
	var batch []Write
	for i := range p.shards {
		sh := &p.shards[i]
		sh.mu.Lock()
		if len(sh.ws) > 0 {
			batch = append(batch, sh.ws...)
			sh.ws = sh.ws[:0]
		}
		sh.mu.Unlock()
	}
	p.queued.Add(int64(-len(batch)))
	p.oldestMu.Lock()
	oldest := p.oldest
	if p.queued.Load() > 0 {
		// Writes raced in behind the collection; restart their latency
		// clock now (approximation — at most one extra MaxFlushLatency).
		p.oldest = p.clock.Now()
	} else {
		p.hasOldest = false
	}
	p.oldestMu.Unlock()
	return batch, oldest
}

// drain applies (and, when align is set, aligns) everything queued, as
// one coalesced group commit. Serialized by drainMu so concurrent
// triggers (pilot deadline, cooperative writer, Sync) coalesce instead
// of interleaving.
func (p *Pilot) drain(reason FlushReason, align bool) {
	p.drainMu.Lock()
	defer p.drainMu.Unlock()
	batch, oldest := p.collect()
	if len(batch) == 0 {
		return
	}
	err := p.target.ApplyWrites(batch)
	if err == nil && align {
		err = p.target.AlignPending()
	}
	var lat time.Duration
	if !oldest.IsZero() {
		lat = p.clock.Now().Sub(oldest)
	}
	p.mFlushes.Add(1)
	p.mApplied.Add(uint64(len(batch)))
	switch reason {
	case FlushCount:
		p.mCountFlushes.Add(1)
	case FlushBytes:
		p.mByteFlushes.Add(1)
	case FlushDeadline:
		p.mDeadlineFlushes.Add(1)
	case FlushBackpressure:
		p.mBackpressureFlushes.Add(1)
	case FlushSync:
		p.mSyncFlushes.Add(1)
	}
	p.latHist.Observe(uint64(lat))
	p.batchHist.Observe(uint64(len(batch)))
	if err != nil {
		p.errMu.Lock()
		if p.firstErr == nil {
			p.firstErr = err
		}
		p.errMu.Unlock()
	}
	if p.cfg.OnFlush != nil {
		p.cfg.OnFlush(FlushInfo{Writes: len(batch), Reason: reason, Latency: lat, Err: err})
	}
}

// maintain runs one temperature-driven lifecycle pass: evict cold views
// (one exclusive slice for the batch), rebuild fragmented ones (one
// slice each, so readers interleave), pre-warm the hottest TLBs, and —
// on a tiered engine — demote the coldest unpinned views' pages under
// hot-tier pressure.
//
// The thresholds are feedback-driven rather than fixed: simulated memory
// pressure (hot-tier occupancy within the [TierLowWater, TierHighWater]
// band) scales the effective ColdTicks down, so a full hot tier evicts
// cold views sooner; the cost model's measured scan slowdown lowers the
// effective RebuildFrag (a struggling read path rebuilds fragmented
// views more eagerly) and halves the demotion batch (don't pile more
// cold touches onto scans that already stall).
func (p *Pilot) maintain() {
	p.mMaintTicks.Add(1)
	clock, temps := p.target.ViewTemperatures()
	rep := MaintainReport{Views: len(temps)}

	tt, _ := p.target.(TierTarget)
	var tier TierInfo
	tiered := false
	if tt != nil && p.cfg.TierHighWater > 0 {
		tier, tiered = tt.TierInfo()
	}
	if tiered {
		press := (tier.Occupancy() - p.cfg.TierLowWater) /
			(p.cfg.TierHighWater - p.cfg.TierLowWater)
		rep.TierPressure = min(max(press, 0), 1)
	}
	slowdown := 1.0
	if p.model != nil {
		slowdown = p.model.ScanSlowdown()
	}
	coldTicks := uint64(0)
	if p.cfg.ColdTicks > 0 {
		coldTicks = uint64(float64(p.cfg.ColdTicks) * (1 - tierPressureColdScale*rep.TierPressure))
		if coldTicks == 0 {
			coldTicks = 1
		}
	}
	rebuildFrag := p.cfg.RebuildFrag
	if rebuildFrag > 0 && slowdown > tierSlowdownGate {
		rebuildFrag *= tierSlowdownGate / slowdown
	}

	var cold []any
	var rebuild []any
	type hotView struct {
		h    any
		uses uint64
		last uint64
	}
	var hot []hotView
	var demotable []ViewTemp
	for _, t := range temps {
		if coldTicks > 0 && clock > coldTicks && clock-t.LastUsed > coldTicks {
			cold = append(cold, t.Handle)
			continue
		}
		if rebuildFrag > 0 && t.Frag >= rebuildFrag && t.Pages >= p.cfg.MinRebuildPages {
			rebuild = append(rebuild, t.Handle)
		}
		hot = append(hot, hotView{h: t.Handle, uses: t.Uses, last: t.LastUsed})
		if tiered && !t.Pinned {
			demotable = append(demotable, t)
		}
	}
	setErr := func(err error) {
		if err != nil && rep.Err == nil {
			rep.Err = err
		}
	}
	if len(cold) > 0 {
		n, err := p.target.EvictViews(cold)
		rep.Evicted = n
		p.mEvicted.Add(uint64(n))
		setErr(err)
	}
	for _, h := range rebuild {
		ok, err := p.target.RebuildView(h)
		if ok {
			rep.Rebuilt++
			p.mRebuilt.Add(1)
		}
		setErr(err)
	}
	if p.cfg.WarmHottest > 0 {
		// Partial selection: repeatedly pick the hottest not yet warmed
		// (uses desc, recency desc) — K is tiny, no sort needed.
		k := p.cfg.WarmHottest
		if k > len(hot) {
			k = len(hot)
		}
		for i := 0; i < k; i++ {
			best := i
			for j := i + 1; j < len(hot); j++ {
				if hot[j].uses > hot[best].uses ||
					(hot[j].uses == hot[best].uses && hot[j].last > hot[best].last) {
					best = j
				}
			}
			hot[i], hot[best] = hot[best], hot[i]
			n, err := p.target.WarmView(hot[i].h)
			rep.WarmedPages += n
			p.mWarmed.Add(uint64(n))
			setErr(err)
		}
	}
	if tiered && tier.Occupancy() >= p.cfg.TierHighWater && len(demotable) > 0 {
		// Demote coldest-first down to the low watermark. Evicted views'
		// frames are already being released this tick, so aim from the
		// post-eviction occupancy would over-demote; the next tick corrects
		// either way — the duty is a feedback loop, not a transaction.
		goal := int(float64(tier.HotBudget) * p.cfg.TierLowWater)
		maxPages := tier.HotFrames - goal
		if slowdown > tierSlowdownGate {
			maxPages /= 2
		}
		if maxPages > 0 {
			sort.Slice(demotable, func(i, j int) bool {
				if demotable[i].LastUsed != demotable[j].LastUsed {
					return demotable[i].LastUsed < demotable[j].LastUsed
				}
				return demotable[i].Uses < demotable[j].Uses
			})
			handles := make([]any, len(demotable))
			for i, t := range demotable {
				handles[i] = t.Handle
			}
			n, err := tt.DemotePages(handles, maxPages)
			rep.PagesDemoted = n
			p.mPagesDemoted.Add(uint64(n))
			setErr(err)
		}
	}
	if rep.Err != nil {
		p.errMu.Lock()
		if p.firstErr == nil {
			p.firstErr = rep.Err
		}
		p.errMu.Unlock()
	}
	if p.cfg.OnMaintain != nil {
		p.cfg.OnMaintain(rep)
	}
}

// Percentile returns the q-quantile (0..1) of the samples by
// nearest-rank; 0 when empty. Used by the harness panel for p50/p99
// flush latency.
func Percentile(ds []time.Duration, q float64) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	sorted := make([]time.Duration, len(ds))
	copy(sorted, ds)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(q*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}
