package autopilot

import (
	"errors"
	"sync"
	"testing"
	"time"
)

// fakeTarget records every Target call; all methods are safe for
// concurrent use and signal appliedCh/alignedCh so tests wait on events
// instead of sleeping.
type fakeTarget struct {
	mu        sync.Mutex
	applied   [][]Write
	aligns    int
	applyErr  error
	clock     uint64
	temps     []ViewTemp
	evicted   [][]any
	rebuilt   []any
	warmed    []any
	warmPages int

	appliedCh chan []Write
	alignedCh chan struct{}
	maintCh   chan struct{}
}

func newFakeTarget() *fakeTarget {
	return &fakeTarget{
		appliedCh: make(chan []Write, 64),
		alignedCh: make(chan struct{}, 64),
		maintCh:   make(chan struct{}, 64),
	}
}

func (f *fakeTarget) ApplyWrites(ws []Write) error {
	f.mu.Lock()
	cp := append([]Write(nil), ws...)
	f.applied = append(f.applied, cp)
	err := f.applyErr
	f.mu.Unlock()
	f.appliedCh <- cp
	return err
}

func (f *fakeTarget) AlignPending() error {
	f.mu.Lock()
	f.aligns++
	f.mu.Unlock()
	f.alignedCh <- struct{}{}
	return nil
}

func (f *fakeTarget) ViewTemperatures() (uint64, []ViewTemp) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.clock, append([]ViewTemp(nil), f.temps...)
}

func (f *fakeTarget) EvictViews(hs []any) (int, error) {
	f.mu.Lock()
	f.evicted = append(f.evicted, hs)
	f.mu.Unlock()
	return len(hs), nil
}

func (f *fakeTarget) RebuildView(h any) (bool, error) {
	f.mu.Lock()
	f.rebuilt = append(f.rebuilt, h)
	f.mu.Unlock()
	return true, nil
}

func (f *fakeTarget) WarmView(h any) (int, error) {
	f.mu.Lock()
	f.warmed = append(f.warmed, h)
	n := f.warmPages
	f.mu.Unlock()
	return n, nil
}

func (f *fakeTarget) totalApplied() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	n := 0
	for _, b := range f.applied {
		n += len(b)
	}
	return n
}

const testRows = 1 << 20

// startPilot builds a pilot over a fake target and a manual clock, with
// maintenance disabled unless the config enables it.
func startPilot(t *testing.T, tgt Target, cfg Config) (*Pilot, *ManualClock) {
	t.Helper()
	clock := NewManualClock(time.Unix(1000, 0))
	cfg.Clock = clock
	if cfg.MaintainInterval == 0 {
		cfg.MaintainInterval = -1
	}
	p, err := Start(tgt, cfg, testRows)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Stop)
	return p, clock
}

func TestCountThresholdFlush(t *testing.T) {
	tgt := newFakeTarget()
	p, _ := startPilot(t, tgt, Config{CoalesceCount: 4, MaxFlushLatency: time.Hour})
	for i := 0; i < 4; i++ {
		if err := p.Enqueue(i, uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	batch := <-tgt.appliedCh
	<-tgt.alignedCh
	if len(batch) != 4 {
		t.Fatalf("coalesced %d writes, want 4", len(batch))
	}
	m := p.Metrics()
	if m.CountFlushes != 1 || m.Flushes != 1 || m.Applied != 4 || m.Enqueued != 4 {
		t.Fatalf("metrics %+v", m)
	}
	if p.Queued() != 0 {
		t.Fatalf("queued %d after flush", p.Queued())
	}
	if got := m.AvgCoalesce(); got != 4 {
		t.Fatalf("AvgCoalesce %g, want 4", got)
	}
}

func TestBytesThresholdFlush(t *testing.T) {
	tgt := newFakeTarget()
	// 3 writes × 16 bytes = 48 ≥ 40: the bytes knob trips before count.
	p, _ := startPilot(t, tgt, Config{CoalesceCount: 100, CoalesceBytes: 40, MaxFlushLatency: time.Hour})
	for i := 0; i < 3; i++ {
		if err := p.Enqueue(i, 1); err != nil {
			t.Fatal(err)
		}
	}
	batch := <-tgt.appliedCh
	<-tgt.alignedCh
	if len(batch) != 3 {
		t.Fatalf("coalesced %d writes, want 3", len(batch))
	}
	if m := p.Metrics(); m.ByteFlushes != 1 {
		t.Fatalf("metrics %+v", m)
	}
}

func TestDeadlineFlush(t *testing.T) {
	tgt := newFakeTarget()
	p, clock := startPilot(t, tgt, Config{CoalesceCount: 100, MaxFlushLatency: 5 * time.Millisecond})
	if err := p.Enqueue(7, 42); err != nil {
		t.Fatal(err)
	}
	// Wait (blocking, not sleeping) until the pilot armed the deadline,
	// then advance past it.
	clock.BlockUntilTimers(1)
	clock.Advance(5 * time.Millisecond)
	batch := <-tgt.appliedCh
	<-tgt.alignedCh
	if len(batch) != 1 || batch[0] != (Write{Row: 7, Value: 42}) {
		t.Fatalf("batch %v", batch)
	}
	m := p.Metrics()
	if m.DeadlineFlushes != 1 {
		t.Fatalf("metrics %+v", m)
	}
	lats := p.FlushLatencies()
	// Samples are quantile-derived from the log₂ latency histogram, so the
	// 5ms flush reads back as its bucket's upper bound (< 8.4ms).
	if len(lats) != 1 || lats[0] < 5*time.Millisecond || lats[0] >= 16*time.Millisecond {
		t.Fatalf("latencies %v, want one sample in [5ms, 16ms)", lats)
	}
	if h := p.LatencyHistogram(); h.Count != 1 {
		t.Fatalf("latency histogram count %d, want 1", h.Count)
	}
}

func TestBackpressureDrainsCooperatively(t *testing.T) {
	tgt := newFakeTarget()
	p, _ := startPilot(t, tgt, Config{CoalesceCount: 1 << 20, CoalesceBytes: 1 << 30,
		MaxFlushLatency: time.Hour, MaxQueued: 8})
	for i := 0; i < 8; i++ {
		if err := p.Enqueue(i, 1); err != nil {
			t.Fatal(err)
		}
	}
	// The 8th enqueue hit MaxQueued and drained on the caller's
	// goroutine, so by the time it returned the writes are applied.
	if got := tgt.totalApplied(); got != 8 {
		t.Fatalf("applied %d writes, want 8", got)
	}
	if m := p.Metrics(); m.BackpressureFlushes != 1 {
		t.Fatalf("metrics %+v", m)
	}
}

func TestSyncDrainsBelowThreshold(t *testing.T) {
	tgt := newFakeTarget()
	p, _ := startPilot(t, tgt, Config{CoalesceCount: 100, MaxFlushLatency: time.Hour})
	for i := 0; i < 3; i++ {
		if err := p.Enqueue(i, uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Sync(); err != nil {
		t.Fatal(err)
	}
	if got := tgt.totalApplied(); got != 3 {
		t.Fatalf("applied %d, want 3", got)
	}
	tgt.mu.Lock()
	aligns := tgt.aligns
	tgt.mu.Unlock()
	if aligns != 1 {
		t.Fatalf("aligns %d, want 1", aligns)
	}
	// Empty sync is a no-op flush-wise.
	if err := p.Sync(); err != nil {
		t.Fatal(err)
	}
	if m := p.Metrics(); m.Flushes != 1 || m.SyncFlushes != 1 {
		t.Fatalf("metrics %+v", m)
	}
}

func TestApplyQueuedSkipsAlignment(t *testing.T) {
	tgt := newFakeTarget()
	p, _ := startPilot(t, tgt, Config{CoalesceCount: 100, MaxFlushLatency: time.Hour})
	if err := p.Enqueue(1, 2); err != nil {
		t.Fatal(err)
	}
	if err := p.ApplyQueued(); err != nil {
		t.Fatal(err)
	}
	tgt.mu.Lock()
	defer tgt.mu.Unlock()
	if len(tgt.applied) != 1 || tgt.aligns != 0 {
		t.Fatalf("applied %d batches, %d aligns; want 1, 0", len(tgt.applied), tgt.aligns)
	}
}

func TestStopDrainsRemaining(t *testing.T) {
	tgt := newFakeTarget()
	p, _ := startPilot(t, tgt, Config{CoalesceCount: 100, MaxFlushLatency: time.Hour})
	for i := 0; i < 5; i++ {
		if err := p.Enqueue(i, 1); err != nil {
			t.Fatal(err)
		}
	}
	p.Stop()
	if got := tgt.totalApplied(); got != 5 {
		t.Fatalf("stop applied %d writes, want 5", got)
	}
	if err := p.Enqueue(1, 1); !errors.Is(err, ErrStopped) {
		t.Fatalf("enqueue after stop: %v", err)
	}
	p.Stop() // idempotent
}

func TestEnqueueValidatesRow(t *testing.T) {
	tgt := newFakeTarget()
	p, _ := startPilot(t, tgt, Config{})
	if err := p.Enqueue(-1, 0); err == nil {
		t.Fatal("negative row accepted")
	}
	if err := p.Enqueue(testRows, 0); err == nil {
		t.Fatal("out-of-range row accepted")
	}
}

func TestFlushErrorSurfacesAtSync(t *testing.T) {
	tgt := newFakeTarget()
	boom := errors.New("apply failed")
	tgt.mu.Lock()
	tgt.applyErr = boom
	tgt.mu.Unlock()
	p, _ := startPilot(t, tgt, Config{CoalesceCount: 2, MaxFlushLatency: time.Hour})
	if err := p.Enqueue(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := p.Enqueue(1, 1); err != nil {
		t.Fatal(err)
	}
	<-tgt.appliedCh
	if err := p.Sync(); !errors.Is(err, boom) {
		t.Fatalf("Sync error = %v, want the async flush failure", err)
	}
	if err := p.Sync(); err != nil {
		t.Fatalf("error not consumed: %v", err)
	}
}

// maintCfg enables only the lifecycle ticker, with deterministic knobs.
func maintCfg(reports chan MaintainReport) Config {
	return Config{
		CoalesceCount:    1 << 20,
		MaxFlushLatency:  time.Hour,
		MaintainInterval: 100 * time.Millisecond,
		ColdTicks:        10,
		RebuildFrag:      0.5,
		MinRebuildPages:  4,
		WarmHottest:      1,
		OnMaintain:       func(r MaintainReport) { reports <- r },
	}
}

func TestMaintainEvictsCold(t *testing.T) {
	tgt := newFakeTarget()
	tgt.clock = 100
	tgt.temps = []ViewTemp{
		{Handle: "cold", LastUsed: 5, Uses: 1, Pages: 10},
		{Handle: "warm", LastUsed: 95, Uses: 50, Pages: 10},
	}
	reports := make(chan MaintainReport, 8)
	p, clock := startPilot(t, tgt, maintCfg(reports))
	_ = p
	clock.Advance(100 * time.Millisecond)
	rep := <-reports
	if rep.Views != 2 || rep.Evicted != 1 {
		t.Fatalf("report %+v", rep)
	}
	tgt.mu.Lock()
	defer tgt.mu.Unlock()
	if len(tgt.evicted) != 1 || len(tgt.evicted[0]) != 1 || tgt.evicted[0][0] != "cold" {
		t.Fatalf("evicted %v", tgt.evicted)
	}
	// The warm view was the hottest → pre-warmed, never rebuilt.
	if len(tgt.warmed) != 1 || tgt.warmed[0] != "warm" {
		t.Fatalf("warmed %v", tgt.warmed)
	}
}

func TestMaintainRebuildsFragmented(t *testing.T) {
	tgt := newFakeTarget()
	tgt.clock = 20
	tgt.temps = []ViewTemp{
		{Handle: "frag", LastUsed: 19, Uses: 3, Pages: 8, Frag: 0.9},
		{Handle: "small-frag", LastUsed: 19, Uses: 3, Pages: 2, Frag: 0.9}, // under MinRebuildPages
		{Handle: "ordered", LastUsed: 19, Uses: 3, Pages: 8, Frag: 0.1},
	}
	reports := make(chan MaintainReport, 8)
	_, clock := startPilot(t, tgt, maintCfg(reports))
	clock.Advance(100 * time.Millisecond)
	rep := <-reports
	if rep.Rebuilt != 1 {
		t.Fatalf("report %+v", rep)
	}
	tgt.mu.Lock()
	defer tgt.mu.Unlock()
	if len(tgt.rebuilt) != 1 || tgt.rebuilt[0] != "frag" {
		t.Fatalf("rebuilt %v", tgt.rebuilt)
	}
}

func TestMaintainGracePeriod(t *testing.T) {
	// Until the LRU clock passes ColdTicks, nothing is cold — fresh
	// engines must not shed their first views.
	tgt := newFakeTarget()
	tgt.clock = 8 // below ColdTicks=10
	tgt.temps = []ViewTemp{{Handle: "young", LastUsed: 0, Uses: 0, Pages: 10}}
	reports := make(chan MaintainReport, 8)
	_, clock := startPilot(t, tgt, maintCfg(reports))
	clock.Advance(100 * time.Millisecond)
	rep := <-reports
	if rep.Evicted != 0 {
		t.Fatalf("evicted during grace period: %+v", rep)
	}
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{CoalesceCount: -1},
		{CoalesceBytes: -1},
		{MaxFlushLatency: -time.Second},
		{MaxQueued: -2},
		{RebuildFrag: 1.5},
	}
	for i, cfg := range bad {
		if _, err := Start(newFakeTarget(), cfg, testRows); err == nil {
			t.Errorf("config %d accepted", i)
		}
	}
}

func TestCostModelScanWorkers(t *testing.T) {
	m := NewCostModel(25 * time.Microsecond)
	// Cold model defers to the static knob.
	if got := m.ScanWorkers(10000, 8, 64); got != 8 {
		t.Fatalf("cold model: %d workers, want 8", got)
	}
	// Below the sharding threshold scans stay serial regardless.
	if got := m.ScanWorkers(32, 8, 64); got != 1 {
		t.Fatalf("small scan: %d workers, want 1", got)
	}
	// Teach it ~1µs/page: a 64-page scan is not worth 8 workers, a
	// 100k-page scan is.
	for i := 0; i < 10; i++ {
		m.ObserveScan(4096, 1, 4096*time.Microsecond)
	}
	if pp := m.ScanNsPerPage(); pp < 900 || pp > 1100 {
		t.Fatalf("scanNsPerPage %g, want ~1000", pp)
	}
	small := m.ScanWorkers(64, 8, 64)
	big := m.ScanWorkers(100_000, 8, 64)
	if small >= big {
		t.Fatalf("workers(64)=%d not below workers(100k)=%d", small, big)
	}
	if big != 8 {
		t.Fatalf("big scan workers %d, want cap 8", big)
	}
	if small > 2 {
		t.Fatalf("64-page scan got %d workers, want <= 2", small)
	}
}

func TestCostModelAlignWorkers(t *testing.T) {
	m := NewCostModel(25 * time.Microsecond)
	if got := m.AlignWorkers(4, 100, 8); got != 4 {
		t.Fatalf("cold model: %d workers, want min(views, max)=4", got)
	}
	// ~2µs per view×dirty-page unit.
	for i := 0; i < 10; i++ {
		m.ObserveAlign(4, 100, 1, 800*time.Microsecond)
	}
	few := m.AlignWorkers(4, 1, 8)     // 4 units of work: stay serial
	many := m.AlignWorkers(8, 2000, 8) // heavy batch: fan all the way out
	if few != 1 {
		t.Fatalf("tiny alignment got %d workers, want 1", few)
	}
	if many != 8 {
		t.Fatalf("heavy alignment got %d workers, want 8", many)
	}
}

func TestPercentile(t *testing.T) {
	ds := []time.Duration{5, 1, 4, 2, 3}
	if got := Percentile(ds, 0.5); got != 3 {
		t.Fatalf("p50 = %d, want 3", got)
	}
	if got := Percentile(ds, 0.99); got != 5 {
		t.Fatalf("p99 = %d, want 5", got)
	}
	if got := Percentile(nil, 0.5); got != 0 {
		t.Fatalf("empty percentile = %d", got)
	}
	// Input must stay untouched.
	if ds[0] != 5 {
		t.Fatal("Percentile mutated its input")
	}
}

func TestManualClockTicker(t *testing.T) {
	c := NewManualClock(time.Unix(0, 0))
	tk := c.NewTicker(10 * time.Millisecond)
	select {
	case <-tk.C():
		t.Fatal("ticker fired before advance")
	default:
	}
	c.Advance(25 * time.Millisecond) // two periods → one coalesced tick
	<-tk.C()
	select {
	case <-tk.C():
		t.Fatal("ticker over-delivered")
	default:
	}
	tk.Stop()
	c.Advance(time.Second)
	select {
	case <-tk.C():
		t.Fatal("stopped ticker fired")
	default:
	}
}
