package autopilot

import (
	"math"
	"sync"
	"time"
)

// ewmaAlpha is the smoothing factor of the cost model's moving averages:
// high enough to track phase changes (a view set growing from 0 to 100
// views changes per-page cost), low enough that one noisy scan does not
// swing the worker choice.
const ewmaAlpha = 0.2

// CostModel is the autopilot's EWMA throughput model. It learns the
// observed per-page cost of scans and the per-(view × dirty-page) cost of
// update alignment, and converts them into a per-operation worker count:
// fan out only when the work amortizes the worker startup overhead.
//
// The choice minimizes the classic span-plus-overhead estimate
//
//	T(w) ≈ units/w · unitCost + w · overhead
//
// whose optimum is w* = sqrt(units · unitCost / overhead), clamped to
// [1, max]. Until the first observation the model defers to the caller's
// static knob (returns max), so a cold engine behaves exactly like the
// pre-autopilot code.
//
// A CostModel is safe for concurrent use; observations and choices are
// tiny critical sections under one mutex.
type CostModel struct {
	mu sync.Mutex
	// scanNsPerPage is the smoothed single-worker cost of filtering one
	// page (ns), inferred from parallel runs as elapsed·workers/pages.
	scanNsPerPage float64
	// scanNsFloor is the lowest smoothed scan cost seen so far — the
	// engine's demonstrated best. scanNsPerPage/scanNsFloor is the
	// measured scan slowdown the tier-pressure feedback moderates on.
	scanNsFloor float64
	// alignNsPerUnit is the smoothed single-worker cost of aligning one
	// view against one dirty page (ns).
	alignNsPerUnit float64
	// overheadNs is the assumed per-worker startup cost (goroutine spawn
	// plus join barrier), from Config.WorkerOverhead.
	overheadNs float64
}

// NewCostModel returns a model assuming the given per-worker overhead.
func NewCostModel(workerOverhead time.Duration) *CostModel {
	if workerOverhead <= 0 {
		workerOverhead = defaultWorkerOverhead
	}
	return &CostModel{overheadNs: float64(workerOverhead.Nanoseconds())}
}

// ewma folds a sample into a moving average (seeding on first use).
func ewma(avg, sample float64) float64 {
	if avg == 0 {
		return sample
	}
	return avg + ewmaAlpha*(sample-avg)
}

// ObserveScan records a finished page scan: pages filtered, workers used,
// wall time elapsed.
func (m *CostModel) ObserveScan(pages, workers int, elapsed time.Duration) {
	if pages <= 0 || workers <= 0 || elapsed <= 0 {
		return
	}
	sample := float64(elapsed.Nanoseconds()) * float64(workers) / float64(pages)
	m.mu.Lock()
	m.scanNsPerPage = ewma(m.scanNsPerPage, sample)
	if m.scanNsFloor == 0 || m.scanNsPerPage < m.scanNsFloor {
		m.scanNsFloor = m.scanNsPerPage
	}
	m.mu.Unlock()
}

// ScanSlowdown returns the current smoothed scan cost relative to the
// best this engine has demonstrated (1 = at the floor, 2 = scans take
// twice as long as they used to; 1 before any observation). Cold-tier
// stalls show up here, which is how the autopilot measures that its
// demotions started hurting the read path.
func (m *CostModel) ScanSlowdown() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.scanNsFloor == 0 {
		return 1
	}
	return m.scanNsPerPage / m.scanNsFloor
}

// ObserveAlign records a finished alignment fan-out: views walked, dirty
// pages in the batch, workers used, wall time elapsed.
func (m *CostModel) ObserveAlign(views, dirtyPages, workers int, elapsed time.Duration) {
	units := views * dirtyPages
	if units <= 0 || workers <= 0 || elapsed <= 0 {
		return
	}
	sample := float64(elapsed.Nanoseconds()) * float64(workers) / float64(units)
	m.mu.Lock()
	m.alignNsPerUnit = ewma(m.alignNsPerUnit, sample)
	m.mu.Unlock()
}

// workersFor evaluates the w* formula for a total predicted cost.
func (m *CostModel) workersFor(units int, unitCostNs float64, max int) int {
	if max <= 1 || units <= 1 {
		return 1
	}
	if unitCostNs == 0 {
		// Cold model: defer to the static knob.
		return max
	}
	w := int(math.Round(math.Sqrt(float64(units) * unitCostNs / m.overheadNs)))
	if w < 1 {
		w = 1
	}
	if w > max {
		w = max
	}
	return w
}

// ScanWorkers picks the worker count for a scan of the given page count,
// capped at max (the resolved static knob). Scans under minPages stay
// serial — the same threshold the sharded kernels already respect.
func (m *CostModel) ScanWorkers(pages, max, minPages int) int {
	if max <= 1 || pages < minPages {
		return 1
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.workersFor(pages, m.scanNsPerPage, max)
}

// AlignWorkers picks the fan-out for an alignment run over the given view
// and dirty-page counts, capped at max. Alignment shards per view, so the
// result never exceeds views.
func (m *CostModel) AlignWorkers(views, dirtyPages, max int) int {
	if max > views {
		max = views
	}
	if max <= 1 {
		return 1
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	unitCost := m.alignNsPerUnit * float64(dirtyPages)
	return m.workersFor(views, unitCost, max)
}

// ScanNsPerPage returns the current smoothed scan cost (0 = no
// observations yet); intended for inspection tools.
func (m *CostModel) ScanNsPerPage() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.scanNsPerPage
}

// AlignNsPerUnit returns the current smoothed per-(view × dirty page)
// alignment cost (0 = no observations yet).
func (m *CostModel) AlignNsPerUnit() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.alignNsPerUnit
}
