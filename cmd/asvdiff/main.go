// Command asvdiff compares two asvbench -json outputs and fails when a
// throughput panel regressed — the nightly bench gate that turns the CI
// artifact trajectory into an actual guard.
//
// Usage:
//
//	asvdiff -old prev/concurrent.json -new bench-out/concurrent.json
//	asvdiff -old prev/updates.json -new bench-out/updates.json -max-regress 15
//
// Both inputs hold one or more JSON panel objects (the asvbench -json
// shape: id, title, header, rows). Panels are matched by id and rows by
// their key cells (every column that is not a measurement). Rate columns
// — headers ending in _qps, _upds or _pps, all higher-is-better — are
// compared cell-wise: a drop of more than -max-regress percent against
// the old value is a regression and exits 1. Gated latency columns —
// headers ending in _p99_ms, lower-is-better — apply the same rule with
// the sign flipped: a rise beyond the threshold fails. Other _ms, _pct
// and _avg columns are informational, as are bare _p99 columns and the
// p99s of any histograms in a panel's embedded telemetry block — those
// are printed for trend-watching but never fail the gate (log₂ bucket
// quantization makes them too coarse to gate on). Panels or rows present
// only on one side are reported and skipped, so adding a panel or
// sweeping new cells never fails the gate.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"

	"github.com/asv-db/asv/internal/obs"
)

// panel is the asvbench -json object shape.
type panel struct {
	ID        string        `json:"id"`
	Title     string        `json:"title"`
	Header    []string      `json:"header"`
	Rows      [][]string    `json:"rows"`
	Telemetry *obs.Snapshot `json:"telemetry"`
}

// rateSuffixes mark higher-is-better throughput columns.
var rateSuffixes = []string{"_qps", "_upds", "_pps"}

func isRateColumn(name string) bool {
	for _, s := range rateSuffixes {
		if strings.HasSuffix(name, s) {
			return true
		}
	}
	return false
}

// latencySuffixes mark gated lower-is-better columns: the autopilot
// panel's tail flush latency and the many-views panel's publication
// latency. A rise beyond -max-regress percent is a regression,
// mirroring the throughput rule with the sign flipped. Plain
// informational durations keep the bare `_ms` suffix (p50 stays
// ungated: medians under coalescing legitimately swing with batch
// shape; the latency *bound* is a tail property).
var latencySuffixes = []string{"_p99_ms", "_pub_ms"}

func isLatencyColumn(name string) bool {
	for _, s := range latencySuffixes {
		if strings.HasSuffix(name, s) {
			return true
		}
	}
	return false
}

// measurementSuffixes mark columns that are measured outputs rather than
// sweep coordinates; they never take part in row keys (a jittery
// measurement in the key would make every row look new and mute the
// gate). Rates and gated latencies are compared; the rest —
// percentages, plain durations, nanosecond totals (the tiered panel's
// simulated stall), averages, and the snapshot panel's
// epoch-vs-room-lock speedup ratio — are informational.
var measurementSuffixes = []string{"_pct", "_ms", "_ns", "_avg", "_speedup", "_p99"}

func isMeasurementColumn(name string) bool {
	if isRateColumn(name) {
		return true
	}
	for _, s := range measurementSuffixes {
		if strings.HasSuffix(name, s) {
			return true
		}
	}
	return false
}

// parsePanels decodes a stream of panel objects.
func parsePanels(r io.Reader) ([]panel, error) {
	dec := json.NewDecoder(r)
	var out []panel
	for {
		var p panel
		if err := dec.Decode(&p); err == io.EOF {
			return out, nil
		} else if err != nil {
			return nil, err
		}
		if p.ID == "" || len(p.Header) == 0 {
			return nil, fmt.Errorf("object without id/header (not an asvbench panel?)")
		}
		out = append(out, p)
	}
}

// rowKey joins a row's sweep-coordinate cells (every column that is not
// a measurement).
func rowKey(header, row []string) string {
	var parts []string
	for i, h := range header {
		if i < len(row) && !isMeasurementColumn(h) {
			parts = append(parts, h+"="+row[i])
		}
	}
	return strings.Join(parts, " ")
}

// finding is one compared cell.
type finding struct {
	line       string
	regression bool
}

// comparePanels diffs every new panel against its old counterpart and
// returns the per-cell report. maxRegress is the tolerated drop in
// percent.
func comparePanels(old, new []panel, maxRegress float64) (findings []finding, regressed bool) {
	oldByID := map[string]panel{}
	for _, p := range old {
		oldByID[p.ID] = p
	}
	for _, np := range new {
		op, ok := oldByID[np.ID]
		if !ok {
			findings = append(findings, finding{line: fmt.Sprintf("%s: no previous panel — skipped", np.ID)})
			continue
		}
		oldCol := map[string]int{}
		for i, h := range op.Header {
			oldCol[h] = i
		}
		oldRows := map[string][]string{}
		for _, r := range op.Rows {
			oldRows[rowKey(op.Header, r)] = r
		}
		for _, nr := range np.Rows {
			key := rowKey(np.Header, nr)
			or, ok := oldRows[key]
			if !ok {
				findings = append(findings, finding{line: fmt.Sprintf("%s [%s]: new cell — skipped", np.ID, key)})
				continue
			}
			for i, h := range np.Header {
				rate, latency := isRateColumn(h), isLatencyColumn(h)
				// Bare _p99 columns (histogram-derived, bucket-quantized)
				// are diffed but never gated.
				info := !rate && !latency && strings.HasSuffix(h, "_p99")
				if (!rate && !latency && !info) || i >= len(nr) {
					continue
				}
				oi, ok := oldCol[h]
				if !ok || oi >= len(or) {
					continue
				}
				oldV, err1 := strconv.ParseFloat(or[oi], 64)
				newV, err2 := strconv.ParseFloat(nr[i], 64)
				if err1 != nil || err2 != nil || oldV <= 0 {
					continue
				}
				deltaPct := (newV/oldV - 1) * 100
				line := fmt.Sprintf("%s [%s] %s: %.2f -> %.2f (%+.1f%%)", np.ID, key, h, oldV, newV, deltaPct)
				if info {
					findings = append(findings, finding{line: line + "  informational"})
					continue
				}
				// Throughput regresses downward, latency upward.
				bad := deltaPct < -maxRegress
				if latency {
					bad = deltaPct > maxRegress
				}
				if bad {
					line += "  REGRESSION"
					regressed = true
				}
				findings = append(findings, finding{line: line, regression: bad})
			}
		}
		findings = append(findings, telemetryFindings(op, np)...)
	}
	return findings, regressed
}

// telemetryFindings diffs the p99 of every histogram present in both
// panels' embedded telemetry blocks. Always informational: log₂ bucket
// bounds move in factor-of-two steps, so a one-bucket shift reads as
// ±100% — a trend signal, not a gate.
func telemetryFindings(op, np panel) []finding {
	if op.Telemetry == nil || np.Telemetry == nil {
		return nil
	}
	names := make([]string, 0, len(np.Telemetry.Histograms))
	for name := range np.Telemetry.Histograms {
		names = append(names, name)
	}
	sort.Strings(names)
	var out []finding
	for _, name := range names {
		nh := np.Telemetry.Histograms[name]
		oh, ok := op.Telemetry.Histograms[name]
		if !ok || oh.Count == 0 || nh.Count == 0 {
			continue
		}
		oldP, newP := oh.Quantile(0.99), nh.Quantile(0.99)
		if oldP == 0 {
			continue
		}
		deltaPct := (float64(newP)/float64(oldP) - 1) * 100
		out = append(out, finding{line: fmt.Sprintf("%s telemetry %s_p99: %d -> %d (%+.1f%%)  informational",
			np.ID, name, oldP, newP, deltaPct)})
	}
	return out
}

func run(oldPath, newPath string, maxRegress float64, w io.Writer) (bool, error) {
	readPanels := func(path string) ([]panel, error) {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		ps, err := parsePanels(f)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		return ps, nil
	}
	old, err := readPanels(oldPath)
	if err != nil {
		return false, err
	}
	cur, err := readPanels(newPath)
	if err != nil {
		return false, err
	}
	findings, regressed := comparePanels(old, cur, maxRegress)
	for _, f := range findings {
		fmt.Fprintln(w, f.line)
	}
	return regressed, nil
}

func main() {
	var (
		oldPath    = flag.String("old", "", "previous asvbench -json output (required)")
		newPath    = flag.String("new", "", "current asvbench -json output (required)")
		maxRegress = flag.Float64("max-regress", 15, "tolerated throughput drop in percent before failing")
	)
	flag.Parse()
	if *oldPath == "" || *newPath == "" {
		fmt.Fprintln(os.Stderr, "asvdiff: -old and -new are required")
		os.Exit(2)
	}
	regressed, err := run(*oldPath, *newPath, *maxRegress, os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "asvdiff:", err)
		os.Exit(2)
	}
	if regressed {
		fmt.Fprintf(os.Stderr, "asvdiff: throughput regressed by more than %.0f%%\n", *maxRegress)
		os.Exit(1)
	}
}
