package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func mkPanel(id string, header []string, rows ...[]string) panel {
	return panel{ID: id, Title: "t", Header: header, Rows: rows}
}

func TestIsRateColumn(t *testing.T) {
	for name, want := range map[string]bool{
		"single_qps":      true,
		"sharded_upds":    true,
		"aligned_pps":     true,
		"clients":         false,
		"reader_drop_pct": false,
		"batch":           false,
	} {
		if got := isRateColumn(name); got != want {
			t.Errorf("isRateColumn(%q) = %v, want %v", name, got, want)
		}
	}
}

func TestCompareDetectsRegression(t *testing.T) {
	header := []string{"clients", "single_qps"}
	old := []panel{mkPanel("concurrent", header, []string{"1", "1000.00"}, []string{"2", "900.00"})}
	cur := []panel{mkPanel("concurrent", header, []string{"1", "800.00"}, []string{"2", "880.00"})}
	findings, regressed := comparePanels(old, cur, 15)
	if !regressed {
		t.Fatal("20% drop not flagged at 15% threshold")
	}
	var bad []string
	for _, f := range findings {
		if f.regression {
			bad = append(bad, f.line)
		}
	}
	if len(bad) != 1 || !strings.Contains(bad[0], "clients=1") {
		t.Fatalf("regressions: %v", bad)
	}
}

func TestCompareTolerancesAndImprovements(t *testing.T) {
	header := []string{"clients", "single_qps"}
	old := []panel{mkPanel("concurrent", header, []string{"1", "1000.00"})}
	for _, cell := range []string{"860.00", "1000.00", "2500.00"} {
		cur := []panel{mkPanel("concurrent", header, []string{"1", cell})}
		if _, regressed := comparePanels(old, cur, 15); regressed {
			t.Fatalf("cell %s flagged as regression", cell)
		}
	}
	cur := []panel{mkPanel("concurrent", header, []string{"1", "840.00"})}
	if _, regressed := comparePanels(old, cur, 15); !regressed {
		t.Fatal("16% drop not flagged")
	}
}

func TestCompareSkipsMissingPanelsAndRows(t *testing.T) {
	header := []string{"writers", "readers", "batch", "sharded_upds"}
	old := []panel{mkPanel("updates", header, []string{"1", "0", "256", "5000.00"})}
	cur := []panel{
		mkPanel("updates", header,
			[]string{"1", "0", "256", "5100.00"},
			[]string{"4", "2", "256", "100.00"}), // new sweep cell: no baseline
		mkPanel("brandnew", []string{"x", "y_qps"}, []string{"1", "1.00"}),
	}
	findings, regressed := comparePanels(old, cur, 15)
	if regressed {
		t.Fatalf("new cells/panels must not fail the gate: %v", findings)
	}
	var text []string
	for _, f := range findings {
		text = append(text, f.line)
	}
	joined := strings.Join(text, "\n")
	if !strings.Contains(joined, "brandnew: no previous panel") {
		t.Fatalf("missing-panel note absent:\n%s", joined)
	}
	if !strings.Contains(joined, "new cell") {
		t.Fatalf("missing-row note absent:\n%s", joined)
	}
}

func TestRowKeyExcludesMeasurements(t *testing.T) {
	header := []string{"writers", "readers", "batch", "sharded_upds", "reader_qps", "reader_drop_pct"}
	// Same sweep cell, different measured values: the keys must match or
	// every night's row would look "new" and the gate would never fire.
	a := rowKey(header, []string{"2", "2", "256", "5000.00", "300.00", "41.27"})
	b := rowKey(header, []string{"2", "2", "256", "4000.00", "250.00", "63.90"})
	if a != b {
		t.Fatalf("keys differ on measured cells: %q vs %q", a, b)
	}
	if !strings.Contains(a, "writers=2") || strings.Contains(a, "drop") {
		t.Fatalf("key = %q", a)
	}
	old := []panel{mkPanel("updates", header, []string{"2", "2", "256", "5000.00", "300.00", "41.27"})}
	cur := []panel{mkPanel("updates", header, []string{"2", "2", "256", "1000.00", "290.00", "80.00"})}
	if _, regressed := comparePanels(old, cur, 15); !regressed {
		t.Fatal("regression hidden behind a jittery measurement key")
	}
}

func TestCompareMatchesRowsByKeyNotIndex(t *testing.T) {
	header := []string{"clients", "single_qps"}
	// Same cells, opposite row order: must still pair 1 with 1.
	old := []panel{mkPanel("concurrent", header, []string{"1", "1000.00"}, []string{"2", "100.00"})}
	cur := []panel{mkPanel("concurrent", header, []string{"2", "99.00"}, []string{"1", "990.00"})}
	if _, regressed := comparePanels(old, cur, 15); regressed {
		t.Fatal("row reordering produced a phantom regression")
	}
}

func TestRunEndToEnd(t *testing.T) {
	dir := t.TempDir()
	oldPath := filepath.Join(dir, "old.json")
	newPath := filepath.Join(dir, "new.json")
	oldJSON := `{"id":"concurrent","title":"t","header":["clients","single_qps"],"rows":[["1","1000.00"]]}
{"id":"updates","title":"t","header":["writers","sharded_upds"],"rows":[["2","40000.00"]]}`
	newJSON := `{"id":"concurrent","title":"t","header":["clients","single_qps"],"rows":[["1","990.00"]]}
{"id":"updates","title":"t","header":["writers","sharded_upds"],"rows":[["2","10000.00"]]}`
	if err := os.WriteFile(oldPath, []byte(oldJSON), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(newPath, []byte(newJSON), 0o644); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	regressed, err := run(oldPath, newPath, 15, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !regressed {
		t.Fatalf("updates collapse not flagged:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), "REGRESSION") {
		t.Fatalf("report lacks REGRESSION marker:\n%s", buf.String())
	}

	if _, err := run(filepath.Join(dir, "absent.json"), newPath, 15, &buf); err == nil {
		t.Fatal("missing input accepted")
	}
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`{"not":"a panel"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := run(bad, newPath, 15, &buf); err == nil {
		t.Fatal("malformed input accepted")
	}
}

func TestLatencyColumnGatedInverted(t *testing.T) {
	header := []string{"lat_budget_us", "writers", "readers", "auto_upds",
		"coalesce_avg", "flush_p50_ms", "flush_p99_ms", "reader_qps"}
	oldRow := []string{"5000", "4", "2", "40000.00", "200.00", "2.100", "5.000", "800.00"}
	old := []panel{mkPanel("autopilot", header, oldRow)}

	// p99 rising 40% is a regression; every other cell is unchanged.
	worse := []panel{mkPanel("autopilot", header,
		[]string{"5000", "4", "2", "40000.00", "180.00", "2.100", "7.000", "800.00"})}
	findings, regressed := comparePanels(old, worse, 15)
	if !regressed {
		t.Fatalf("p99 latency rise not flagged: %v", findings)
	}
	var bad []string
	for _, f := range findings {
		if f.regression {
			bad = append(bad, f.line)
		}
	}
	if len(bad) != 1 || !strings.Contains(bad[0], "flush_p99_ms") {
		t.Fatalf("regressions: %v", bad)
	}

	// p99 falling 40% is an improvement, never a regression — the sign
	// is inverted relative to throughput columns.
	better := []panel{mkPanel("autopilot", header,
		[]string{"5000", "4", "2", "40000.00", "300.00", "1.000", "3.000", "900.00"})}
	if _, regressed := comparePanels(old, better, 15); regressed {
		t.Fatal("latency improvement flagged as regression")
	}

	// coalesce_avg and flush_p50_ms are informational: wild swings alone
	// neither gate nor break row matching.
	jitter := []panel{mkPanel("autopilot", header,
		[]string{"5000", "4", "2", "40000.00", "9.00", "0.100", "5.100", "800.00"})}
	findings, regressed = comparePanels(old, jitter, 15)
	if regressed {
		t.Fatalf("informational columns gated: %v", findings)
	}
	for _, f := range findings {
		if strings.Contains(f.line, "new cell") {
			t.Fatalf("measurement columns leaked into the row key: %v", findings)
		}
	}
	// The sweep coordinate does key rows: a different latency bound is a
	// new cell, not a comparison.
	otherLat := []panel{mkPanel("autopilot", header,
		[]string{"1000", "4", "2", "10.00", "1.00", "9.000", "9.000", "10.00"})}
	findings, regressed = comparePanels(old, otherLat, 15)
	if regressed {
		t.Fatalf("new sweep coordinate failed the gate: %v", findings)
	}
}
