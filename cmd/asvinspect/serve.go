package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"time"

	"github.com/asv-db/asv/internal/serve"
)

// serveDemo is the network front end made visible: an in-process asvd on
// a random loopback port, a fill + query + update round-trip driven
// entirely over HTTP, the server's telemetry snapshot, and a verified
// graceful shutdown — the whole serving path in one screen of output.
func serveDemo(pages int, distName string, seed uint64) error {
	const domain = 100_000_000

	srv := serve.NewServer(serve.ServerConfig{})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(l) }()
	base := "http://" + l.Addr().String()
	fmt.Printf("asvd listening on %s\n\n", l.Addr())

	post := func(path string, req any) (map[string]any, error) {
		var body io.Reader
		if req != nil {
			buf, err := json.Marshal(req)
			if err != nil {
				return nil, err
			}
			body = bytes.NewReader(buf)
		}
		resp, err := http.Post(base+path, "application/json", body)
		if err != nil {
			return nil, err
		}
		defer resp.Body.Close()
		raw, err := io.ReadAll(resp.Body)
		if err != nil {
			return nil, err
		}
		var out map[string]any
		if err := json.Unmarshal(raw, &out); err != nil {
			return nil, fmt.Errorf("%s: bad response %q", path, raw)
		}
		if resp.StatusCode >= 400 {
			return nil, fmt.Errorf("%s: status %d: %v", path, resp.StatusCode, out["error"])
		}
		return out, nil
	}

	info, err := post("/t/demo/columns", map[string]any{
		"name": "m", "pages": pages, "shards": 4, "partitioning": "range",
		"fill": map[string]any{"dist": distName, "seed": seed, "lo": 0, "hi": domain},
	})
	if err != nil {
		return err
	}
	fmt.Printf("created tenant %q column %q: %v pages, %v rows, %v shards (%v partitioning)\n",
		"demo", "m", info["pages"], info["rows"], info["shards"], info["partitioning"])

	q, err := post("/t/demo/columns/m/query?trace=1", map[string]any{
		"lo": domain / 4, "hi": domain / 2, "aggregate": true,
	})
	if err != nil {
		return err
	}
	fmt.Printf("query [%d, %d] -> %v rows, sum %v, %v pages scanned across the shards\n",
		domain/4, domain/2, q["count"], q["sum"], q["pages_scanned"])
	if tr, ok := q["trace"].(string); ok {
		fmt.Printf("\n--- scatter-gather trace ---\n%s\n", tr)
	}

	// Overwrite a row to a sentinel outside the fill domain, flush, and
	// find it again — the update path round-tripping over the wire.
	const sentinel = uint64(3 * domain)
	if _, err := post("/t/demo/columns/m/update", map[string]any{"row": 7, "value": sentinel}); err != nil {
		return err
	}
	if _, err := post("/t/demo/columns/m/sync", nil); err != nil {
		return err
	}
	found, err := post("/t/demo/columns/m/query", map[string]any{
		"lo": sentinel, "hi": sentinel, "rows": true,
	})
	if err != nil {
		return err
	}
	fmt.Printf("update row 7 -> %d, sync, point query -> row_ids %v\n", sentinel, found["row_ids"])

	resp, err := http.Get(base + "/metrics")
	if err != nil {
		return err
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return err
	}
	fmt.Printf("\n--- server telemetry (/metrics) ---\n%s", pretty(raw))

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		return err
	}
	if err := <-serveErr; err != http.ErrServerClosed {
		return err
	}
	fmt.Printf("\ngraceful shutdown: drained and closed clean\n")
	return nil
}

// pretty re-indents a JSON blob for terminal output, passing it through
// untouched if it does not parse.
func pretty(raw []byte) string {
	var buf bytes.Buffer
	if err := json.Indent(&buf, bytes.TrimSpace(raw), "", "  "); err != nil {
		return string(raw)
	}
	buf.WriteByte('\n')
	return buf.String()
}
