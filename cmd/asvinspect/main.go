// Command asvinspect demonstrates the internals of the adaptive storage
// layer on a small column: it runs a query sequence, then dumps the view
// set, the VMA layout of the simulated address space, and the rendered
// /proc-style maps file — the structures the paper's mechanisms live in.
//
// Usage:
//
//	asvinspect [-pages 2048] [-queries 40] [-dist sine] [-mode single|multi] [-scanworkers -1]
//	asvinspect -autopilot            # fire-and-forget updates + lifecycle telemetry
//	asvinspect -snapshot             # pin an epoch, mutate the column, show repeatable reads
//	asvinspect -trace                # run one traced probe query and print its span tree
//	asvinspect -events               # enable the event journal and dump it at the end
//	asvinspect -metrics              # print the unified telemetry snapshot
//	asvinspect -metrics-out f.json   # write the telemetry snapshot as JSON (for CI artifacts)
//	asvinspect -serve                # in-process asvd: HTTP round-trip + telemetry + graceful drain
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"github.com/asv-db/asv/internal/autopilot"
	"github.com/asv-db/asv/internal/core"
	"github.com/asv-db/asv/internal/dist"
	"github.com/asv-db/asv/internal/obs"
	"github.com/asv-db/asv/internal/storage"
	"github.com/asv-db/asv/internal/vmsim"
	"github.com/asv-db/asv/internal/workload"
	"github.com/asv-db/asv/internal/xrand"
)

func main() {
	var (
		pages    = flag.Int("pages", 2048, "column size in 4KiB pages")
		queries  = flag.Int("queries", 40, "number of adaptive queries to fire")
		distName = flag.String("dist", "sine", "distribution: "+strings.Join(dist.Names(), ", "))
		mode     = flag.String("mode", "single", "routing mode: single or multi")
		seed     = flag.Uint64("seed", 42, "workload seed")
		showMaps = flag.Bool("maps", true, "print the rendered maps file")
		parallel = flag.Bool("parallel", true, "fill the column with page-sharded workers")
		scanWork = flag.Int("scanworkers", 0, "page-sharded scan workers per query (0 = serial, <0 = GOMAXPROCS)")
		autoPlt  = flag.Bool("autopilot", false, "enable the background maintenance subsystem: interleave fire-and-forget updates with the queries and dump coalescing/lifecycle telemetry")
		snapDemo = flag.Bool("snapshot", false, "after the query sequence, pin an epoch snapshot, overwrite rows and flush, and show the pinned reads staying repeatable while live reads move")
		tierDemo = flag.Bool("tiers", false, "attach a simulated capacity tier (hot budget = half the pages), demote the whole column after the queries, re-run a probe and dump per-tier occupancy")
		traceQ   = flag.Bool("trace", false, "after the query sequence, run one traced probe query and print its span tree")
		events   = flag.Bool("events", false, "enable the engine event journal (256 events) and dump it at the end")
		metrics  = flag.Bool("metrics", false, "print the unified telemetry snapshot (counters, gauges, histograms)")
		metOut   = flag.String("metrics-out", "", "write the telemetry snapshot as stable JSON to this file")
		srvDemo  = flag.Bool("serve", false, "run the network front end smoke demo: in-process asvd on a random port, fill + query + update round-trip over HTTP, telemetry, graceful shutdown")
	)
	flag.Parse()

	if *srvDemo {
		if err := serveDemo(*pages, *distName, *seed); err != nil {
			fmt.Fprintln(os.Stderr, "asvinspect:", err)
			os.Exit(1)
		}
		return
	}

	o := obsFlags{trace: *traceQ, events: *events, metrics: *metrics, metricsOut: *metOut}
	if err := run(*pages, *queries, *distName, *mode, *seed, *showMaps, *parallel, *scanWork, *autoPlt, *snapDemo, *tierDemo, o); err != nil {
		fmt.Fprintln(os.Stderr, "asvinspect:", err)
		os.Exit(1)
	}
}

// obsFlags bundles the observability switches so run's signature stays
// readable.
type obsFlags struct {
	trace      bool
	events     bool
	metrics    bool
	metricsOut string
}

func run(pages, queries int, distName, mode string, seed uint64, showMaps, parallel bool, scanWorkers int, autoPilot, snapDemo, tierDemo bool, o obsFlags) error {
	const domain = 100_000_000

	kern := vmsim.NewKernel(0)
	as := kern.NewAddressSpace()
	as.SetMaxMapCount(1<<32 - 1)
	col, err := storage.NewColumn(kern, as, "demo", pages)
	if err != nil {
		return err
	}
	g, err := dist.ByName(distName, seed, 0, domain, pages)
	if err != nil {
		return err
	}
	t0 := time.Now()
	if parallel {
		err = col.FillParallel(g, 0)
	} else {
		err = col.Fill(g)
	}
	if err != nil {
		return err
	}
	fillDur := time.Since(t0)

	cfg := core.DefaultConfig()
	cfg.Parallelism = scanWorkers
	if mode == "multi" {
		cfg.Mode = core.MultiView
	} else if mode != "single" {
		return fmt.Errorf("unknown mode %q", mode)
	}
	if autoPilot {
		cfg.Autopilot = &autopilot.Config{}
	}
	if tierDemo {
		cfg.Tiering = &vmsim.TierConfig{HotFrames: (pages + 1) / 2}
	}
	if o.events {
		cfg.JournalEvents = 256
	}
	eng, err := core.NewEngine(col, cfg)
	if err != nil {
		return err
	}
	defer eng.Close()

	fill := "serial"
	if parallel {
		fill = "parallel"
	}
	scan := "serial scans"
	if scanWorkers < 0 {
		scan = "GOMAXPROCS-sharded scans"
	} else if scanWorkers > 1 {
		scan = fmt.Sprintf("%d-way sharded scans", scanWorkers)
	}
	fmt.Printf("column: %d pages (%d rows), %s distribution over [0, %d], %s fill in %s, %s\n",
		col.NumPages(), col.Rows(), distName, domain, fill, fillDur.Round(time.Microsecond), scan)

	qs := workload.SelectivitySweep(seed, queries, domain, domain/2, domain/1000)
	rng := xrand.New(seed + 99)
	for i, q := range qs {
		if autoPilot {
			// Interleave fire-and-forget updates: the autopilot applies
			// and aligns them in the background while we keep querying.
			for u := 0; u < 16; u++ {
				if err := eng.Update(rng.Intn(col.Rows()), rng.Uint64n(domain)); err != nil {
					return err
				}
			}
		}
		res, err := eng.Query(q.Lo, q.Hi)
		if err != nil {
			return err
		}
		verdict := "full scan"
		if !res.UsedFullView {
			verdict = fmt.Sprintf("%d view(s)", res.ViewsUsed)
		}
		decision := ""
		if res.CandidateBuilt {
			decision = " | candidate " + res.Decision.String()
		}
		fmt.Printf("q%02d [%9d, %9d]  -> %6d rows, %5d pages scanned via %s%s\n",
			i, q.Lo, q.Hi, res.Count, res.PagesScanned, verdict, decision)
	}

	if autoPilot {
		if _, err := eng.Sync(); err != nil {
			return err
		}
	}

	if snapDemo {
		if err := snapshotDemo(eng, qs, rng, domain); err != nil {
			return err
		}
	}

	if tierDemo {
		if err := tiersDemo(eng, qs); err != nil {
			return err
		}
	}

	fmt.Printf("\n=== view set (%d partial views, frozen=%v) ===\n",
		eng.ViewSet().Len(), eng.ViewSet().Frozen())
	clock := eng.ViewSet().Clock()
	for i, v := range eng.Views() {
		fmt.Printf("  view %2d: [%12d, %12d]  %6d pages\n", i, v.Lo(), v.Hi(), v.NumPages())
	}
	if autoPilot {
		fmt.Printf("\n=== autopilot ===\n")
		p := eng.Autopilot()
		m := p.Metrics()
		fmt.Printf("  writes: %d enqueued, %d applied in %d coalesced flushes (avg %.1f/flush)\n",
			m.Enqueued, m.Applied, m.Flushes, m.AvgCoalesce())
		fmt.Printf("  flush triggers: %d count, %d bytes, %d deadline, %d backpressure, %d sync\n",
			m.CountFlushes, m.ByteFlushes, m.DeadlineFlushes, m.BackpressureFlushes, m.SyncFlushes)
		lats := p.FlushLatencies()
		fmt.Printf("  flush latency: p50 %s, p99 %s (%d samples)\n",
			autopilot.Percentile(lats, 0.50).Round(time.Microsecond),
			autopilot.Percentile(lats, 0.99).Round(time.Microsecond), len(lats))
		fmt.Printf("  lifecycle: %d ticks, %d cold views evicted, %d rebuilt, %d TLB pages warmed\n",
			m.MaintenanceTicks, m.ViewsEvicted, m.ViewsRebuilt, m.TLBPagesWarmed)
		fmt.Printf("  cost model: %.0f ns/page scans, %.1f ns/unit alignment\n",
			p.Model().ScanNsPerPage(), p.Model().AlignNsPerUnit())
		fmt.Printf("  view temperatures (LRU clock %d):\n", clock)
		for i, tp := range eng.ViewSet().Temperatures() {
			fmt.Printf("    view %2d: last used tick %d, %d hits\n", i, tp.LastUsed, tp.Uses)
		}
	}

	if o.trace {
		probe := qs[len(qs)/2]
		ans, err := eng.QueryOpt(probe.Lo, probe.Hi, core.QueryOptions{Trace: obs.NewTrace("query")})
		if err != nil {
			return err
		}
		fmt.Printf("\n=== trace: probe [%d, %d] -> %d rows ===\n", probe.Lo, probe.Hi, ans.Count)
		fmt.Print(ans.Trace)
	}

	if o.events {
		evs := eng.Journal().Events()
		fmt.Printf("\n=== event journal (%d events, cap %d) ===\n", len(evs), eng.Journal().Cap())
		for _, ev := range evs {
			fmt.Printf("  %s\n", ev)
		}
	}

	if o.metrics {
		fmt.Printf("\n=== telemetry ===\n")
		fmt.Print(eng.Telemetry().String())
	}

	if o.metricsOut != "" {
		data, err := eng.Telemetry().JSON()
		if err != nil {
			return err
		}
		if err := os.WriteFile(o.metricsOut, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("\ntelemetry snapshot written to %s\n", o.metricsOut)
	}

	st := as.Stats()
	fmt.Printf("\n=== address space ===\n")
	fmt.Printf("  VMAs: %d   mmap calls: %d   pages mapped: %d   splits: %d   merges: %d\n",
		st.VMACount, st.MmapCalls, st.PagesMapped, st.VMASplits, st.VMAMerges)
	fmt.Printf("  physical memory in use: %d MiB\n", kern.FramesInUse()*vmsim.PageSize/(1<<20))

	if showMaps {
		fmt.Printf("\n=== /proc/%d/maps (first 20 lines) ===\n", as.PID())
		maps := as.RenderMaps()
		printed, line := 0, 0
		for _, b := range maps {
			if printed >= 20 {
				fmt.Printf("  ... (%d more lines)\n", countLines(maps)-printed)
				break
			}
			fmt.Printf("%c", b)
			line++
			if b == '\n' {
				printed++
			}
		}
	}
	return nil
}

// snapshotDemo pins the current epoch, mutates the column through the
// write path (overwrites + flush, which realigns views and publishes new
// states), and shows the pinned handle answering byte-identically while
// live queries observe the new values — the epoch-routing mechanism made
// visible.
func snapshotDemo(eng *core.Engine, qs []workload.Query, rng *xrand.Rand, domain uint64) error {
	fmt.Printf("\n=== snapshot (pinned epoch) ===\n")
	snap, err := eng.Snapshot()
	if err != nil {
		return err
	}
	defer snap.Close()
	probe := qs[len(qs)/2]
	before, err := snap.Query(probe.Lo, probe.Hi)
	if err != nil {
		return err
	}
	fmt.Printf("  pinned gen %d with %d partial view(s); probe [%d, %d] -> %d rows (sum %d)\n",
		snap.Gen(), snap.Views(), probe.Lo, probe.Hi, before.Count, before.Sum)

	rows := eng.Column().Rows()
	const overwrites = 4096
	for i := 0; i < overwrites; i++ {
		if err := eng.Update(rng.Intn(rows), rng.Uint64n(domain)); err != nil {
			return err
		}
	}
	rep, err := eng.Sync()
	if err != nil {
		return err
	}
	fmt.Printf("  mutated: %d overwrites flushed (%d dirty pages, +%d/-%d view pages realigned)\n",
		overwrites, rep.DirtyPages, rep.PagesAdded, rep.PagesRemoved)

	after, err := snap.Query(probe.Lo, probe.Hi)
	if err != nil {
		return err
	}
	live, err := eng.Query(probe.Lo, probe.Hi)
	if err != nil {
		return err
	}
	repeat := "repeatable"
	if after.Count != before.Count || after.Sum != before.Sum {
		repeat = "NOT REPEATABLE (bug!)"
	}
	fmt.Printf("  pinned re-read  -> %d rows (sum %d): %s\n", after.Count, after.Sum, repeat)
	fmt.Printf("  live read       -> %d rows (sum %d) over the realigned views\n", live.Count, live.Sum)
	return nil
}

// tiersDemo makes the frame tiers visible: per-tier occupancy after the
// adaptive workload, then after demoting the entire column to the
// simulated capacity tier, then after one probe query whose touches
// promote what it scanned back up to the hot budget — charging the
// configured latency multiplier for every cold frame on the way.
func tiersDemo(eng *core.Engine, qs []workload.Query) error {
	fmt.Printf("\n=== frame tiers ===\n")
	dump := func(stage string) (vmsim.TierStats, error) {
		s, ok := eng.TierStats()
		if !ok {
			return s, fmt.Errorf("tier demo engine reports no tier stats")
		}
		fmt.Printf("  %-28s hot %6d / budget %d, cold %6d (hot fraction %.2f)\n",
			stage+":", s.HotFrames, s.HotBudget, s.ColdFrames, s.HotFraction())
		return s, nil
	}
	if _, err := dump("after workload"); err != nil {
		return err
	}

	tier := eng.Tier()
	for p := 0; p < eng.Column().NumPages(); p++ {
		tier.Demote(p)
	}
	if _, err := dump("after demoting every page"); err != nil {
		return err
	}

	probe := qs[len(qs)/2]
	res, err := eng.Query(probe.Lo, probe.Hi)
	if err != nil {
		return err
	}
	s, err := dump("after one probe query")
	if err != nil {
		return err
	}
	fmt.Printf("  probe [%d, %d] -> %d rows over %d pages\n",
		probe.Lo, probe.Hi, res.Count, res.PagesScanned)
	fmt.Printf("  lifetime: %d demotions, %d promotions, %d cold touches, %s simulated stall\n",
		s.Demotions, s.Promotions, s.ColdTouches, time.Duration(s.StallNanos))
	return nil
}

func countLines(b []byte) int {
	n := 0
	for _, c := range b {
		if c == '\n' {
			n++
		}
	}
	return n
}
