// Command asvbench regenerates the tables and figures of "Towards Adaptive
// Storage Views in Virtual Memory" (CIDR 2023) on the simulated
// virtual-memory substrate of this repository.
//
// Usage:
//
//	asvbench -experiment fig3                 # one experiment, text output
//	asvbench -experiment all -format tsv      # everything, plot-ready TSV
//	asvbench -experiment table1 -pages 262144 # larger scale
//	asvbench -experiment concurrent -json     # machine-readable panel
//
// Experiments: fig2, fig3, fig4a-f (d-f run the hotspot, clustered and
// shifted scenario distributions beyond the paper), fig5a, fig5b, fig6a,
// fig6b, fig7a, fig7b, table1, concurrent (multi-client throughput,
// beyond the paper), updates (mixed read/write throughput over the
// sharded update write path, beyond the paper), autopilot (bounded-
// latency engine-side write coalescing, beyond the paper), snapshot
// (reader qps under a forced alignment storm: legacy room-lock reads vs
// epoch-routed reads vs pinned snapshots, beyond the paper), manyviews
// (many-views scaling, beyond the paper), tiered (qps vs hot-tier
// fraction over the simulated capacity tier, beyond the paper), serve
// (HTTP scatter-gather throughput and tail latency over tenants x
// shards, beyond the paper), all. An
// unknown -experiment name fails with the list of valid names. The
// default scale is 1/16 of the paper's
// (65,536 pages ≈ 256 MiB per column); -pages 1048576 reproduces the
// paper's full size if you have the memory and patience. -json emits one
// JSON object per panel — the diffable shape CI archives as an artifact.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"github.com/asv-db/asv/internal/harness"
	"github.com/asv-db/asv/internal/obs"
)

// experiment binds an ID to its harness runner.
type experiment struct {
	id   string
	desc string
	run  func(harness.Scale) ([]*harness.Table, error)
}

func seqTables(res *harness.SequenceResult, err error) ([]*harness.Table, error) {
	if err != nil {
		return nil, err
	}
	return []*harness.Table{res.Table}, nil
}

func one(t *harness.Table, err error) ([]*harness.Table, error) {
	if err != nil {
		return nil, err
	}
	return []*harness.Table{t}, nil
}

var experiments = []experiment{
	{"fig2", "clustered data distributions", func(s harness.Scale) ([]*harness.Table, error) {
		return one(harness.RunFig2(s))
	}},
	{"fig3", "explicit vs virtual partial views", func(s harness.Scale) ([]*harness.Table, error) {
		return one(harness.RunFig3(s))
	}},
	{"fig4a", "adaptive single-view, sine", func(s harness.Scale) ([]*harness.Table, error) {
		return seqTables(harness.RunFig4(s, "sine"))
	}},
	{"fig4b", "adaptive single-view, linear", func(s harness.Scale) ([]*harness.Table, error) {
		return seqTables(harness.RunFig4(s, "linear"))
	}},
	{"fig4c", "adaptive single-view, sparse", func(s harness.Scale) ([]*harness.Table, error) {
		return seqTables(harness.RunFig4(s, "sparse"))
	}},
	{"fig4d", "adaptive single-view, hotspot (beyond the paper)", func(s harness.Scale) ([]*harness.Table, error) {
		return seqTables(harness.RunFig4(s, "hotspot"))
	}},
	{"fig4e", "adaptive single-view, clustered (beyond the paper)", func(s harness.Scale) ([]*harness.Table, error) {
		return seqTables(harness.RunFig4(s, "clustered"))
	}},
	{"fig4f", "adaptive single-view, shifted (beyond the paper)", func(s harness.Scale) ([]*harness.Table, error) {
		return seqTables(harness.RunFig4(s, "shifted"))
	}},
	{"fig5a", "adaptive multi-view, sine, sel 1%", func(s harness.Scale) ([]*harness.Table, error) {
		return seqTables(harness.RunFig5(s, 0.01, 200))
	}},
	{"fig5b", "adaptive multi-view, sine, sel 10%", func(s harness.Scale) ([]*harness.Table, error) {
		return seqTables(harness.RunFig5(s, 0.10, 20))
	}},
	{"fig6a", "view-creation optimizations, uniform", func(s harness.Scale) ([]*harness.Table, error) {
		return one(harness.RunFig6(s, "uniform"))
	}},
	{"fig6b", "view-creation optimizations, sine", func(s harness.Scale) ([]*harness.Table, error) {
		return one(harness.RunFig6(s, "sine"))
	}},
	{"fig7a", "update performance, uniform", func(s harness.Scale) ([]*harness.Table, error) {
		return one(harness.RunFig7(s, "uniform"))
	}},
	{"fig7b", "update performance, sine", func(s harness.Scale) ([]*harness.Table, error) {
		return one(harness.RunFig7(s, "sine"))
	}},
	{"table1", "accumulated response times (runs fig4a-c, fig5a-b)", func(s harness.Scale) ([]*harness.Table, error) {
		return one(harness.RunTable1(s))
	}},
	{"concurrent", "multi-client throughput vs routing mode (beyond the paper)", func(s harness.Scale) ([]*harness.Table, error) {
		return one(harness.RunConcurrent(s))
	}},
	{"updates", "mixed read/write throughput: sharded buffers vs single pending buffer (beyond the paper)", func(s harness.Scale) ([]*harness.Table, error) {
		return one(harness.RunUpdates(s))
	}},
	{"autopilot", "autopilot write coalescing: lone vs auto vs batched writes, p50/p99 flush latency (beyond the paper)", func(s harness.Scale) ([]*harness.Table, error) {
		return one(harness.RunAutopilot(s))
	}},
	{"snapshot", "reader qps under forced alignment storm: room-lock vs epoch vs pinned-snapshot reads (beyond the paper)", func(s harness.Scale) ([]*harness.Table, error) {
		return one(harness.RunSnapshot(s))
	}},
	{"manyviews", "many-views scaling: batched creation, delta publication latency, first-touch reads over lazy views (beyond the paper)", func(s harness.Scale) ([]*harness.Table, error) {
		return one(harness.RunManyViews(s))
	}},
	{"tiered", "tiered view memory: adaptive qps vs hot-tier fraction at 10x suite page count (beyond the paper)", func(s harness.Scale) ([]*harness.Table, error) {
		return one(harness.RunTiered(s))
	}},
	{"serve", "HTTP front end: scatter-gather qps and p50/p99 latency over tenants x shards, with verified graceful drain (beyond the paper)", func(s harness.Scale) ([]*harness.Table, error) {
		return one(harness.RunServe(s))
	}},
}

func main() {
	var (
		expID   = flag.String("experiment", "", "experiment to run (see -list)")
		list    = flag.Bool("list", false, "list experiments and exit")
		pages   = flag.Int("pages", 0, "column size in 4KiB pages (default 65536; paper used 1048576)")
		queries = flag.Int("queries", 0, "query sequence length (default 250)")
		runs    = flag.Int("runs", 0, "repetitions to average (default 3)")
		seed    = flag.Uint64("seed", 0, "workload seed (default 42)")
		format  = flag.String("format", "text", "output format: text, tsv or json")
		jsonOut = flag.Bool("json", false, "emit machine-readable JSON (one object per panel); shorthand for -format json")
		outDir  = flag.String("out", "", "write one <experiment>.tsv (or .json with -json) per table into this directory")
		quiet   = flag.Bool("quiet", false, "suppress progress output")
	)
	flag.Parse()
	if *jsonOut {
		*format = "json"
	}

	if *list {
		for _, e := range experiments {
			fmt.Printf("  %-8s %s\n", e.id, e.desc)
		}
		fmt.Println("  all      run every experiment")
		return
	}
	if *expID == "" {
		fmt.Fprintln(os.Stderr, "asvbench: -experiment is required (try -list)")
		os.Exit(2)
	}
	if *format != "text" && *format != "tsv" && *format != "json" {
		fmt.Fprintln(os.Stderr, "asvbench: -format must be text, tsv or json")
		os.Exit(2)
	}

	sc := harness.DefaultScale()
	if *pages > 0 {
		sc.Pages = *pages
	}
	if *queries > 0 {
		sc.Queries = *queries
	}
	if *runs > 0 {
		sc.Runs = *runs
	}
	if *seed != 0 {
		sc.Seed = *seed
	}
	if !*quiet {
		sc.Progress = os.Stderr
	}

	selected, err := selectExperiments(*expID)
	if err != nil {
		fmt.Fprintln(os.Stderr, "asvbench:", err)
		os.Exit(2)
	}

	for _, e := range selected {
		start := time.Now()
		tables, err := e.run(sc)
		if err != nil {
			fmt.Fprintf(os.Stderr, "asvbench: %s: %v\n", e.id, err)
			os.Exit(1)
		}
		if !*quiet {
			fmt.Fprintf(os.Stderr, "%s finished in %s\n", e.id, time.Since(start).Round(time.Millisecond))
		}
		for _, t := range tables {
			if err := emit(t, *format, *outDir); err != nil {
				fmt.Fprintf(os.Stderr, "asvbench: writing %s: %v\n", t.ID, err)
				os.Exit(1)
			}
		}
	}
}

func selectExperiments(id string) ([]experiment, error) {
	if id == "all" {
		return experiments, nil
	}
	var out []experiment
	for _, want := range strings.Split(id, ",") {
		found := false
		for _, e := range experiments {
			if e.id == want {
				out = append(out, e)
				found = true
				break
			}
		}
		if !found {
			var ids []string
			for _, e := range experiments {
				ids = append(ids, e.id)
			}
			sort.Strings(ids)
			return nil, fmt.Errorf("unknown experiment %q (known: %s, all)", want, strings.Join(ids, ", "))
		}
	}
	return out, nil
}

func emit(t *harness.Table, format, outDir string) error {
	var w io.Writer = os.Stdout
	if outDir != "" {
		if err := os.MkdirAll(outDir, 0o755); err != nil {
			return err
		}
		ext := ".tsv"
		if format == "json" {
			ext = ".json"
		}
		f, err := os.Create(filepath.Join(outDir, t.ID+ext))
		if err != nil {
			return err
		}
		defer f.Close()
		if format == "json" {
			return writeJSON(f, t)
		}
		return t.WriteTSV(f)
	}
	switch format {
	case "json":
		return writeJSON(w, t)
	case "tsv":
		return t.WriteTSV(w)
	}
	if err := t.WriteText(w); err != nil {
		return err
	}
	_, err := fmt.Fprintln(w)
	return err
}

// writeJSON emits one self-describing JSON object per panel — the shape CI
// archives as a bench artifact, so trajectory tooling can diff runs
// without parsing aligned text.
func writeJSON(w io.Writer, t *harness.Table) error {
	enc := json.NewEncoder(w)
	return enc.Encode(struct {
		ID        string        `json:"id"`
		Title     string        `json:"title"`
		Header    []string      `json:"header"`
		Rows      [][]string    `json:"rows"`
		Telemetry *obs.Snapshot `json:"telemetry,omitempty"`
	}{t.ID, t.Title, t.Header, t.Rows, t.Telemetry})
}
