package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/asv-db/asv/internal/harness"
)

func TestSelectExperiments(t *testing.T) {
	all, err := selectExperiments("all")
	if err != nil || len(all) != len(experiments) {
		t.Fatalf("all: %d experiments, %v", len(all), err)
	}
	one, err := selectExperiments("fig3")
	if err != nil || len(one) != 1 || one[0].id != "fig3" {
		t.Fatalf("fig3: %v, %v", one, err)
	}
	multi, err := selectExperiments("fig6a,fig7b")
	if err != nil || len(multi) != 2 || multi[0].id != "fig6a" || multi[1].id != "fig7b" {
		t.Fatalf("multi: %v, %v", multi, err)
	}
	if _, err := selectExperiments("fig99"); err == nil {
		t.Fatal("unknown experiment accepted")
	}
	if _, err := selectExperiments("fig3,fig99"); err == nil {
		t.Fatal("partially unknown list accepted")
	}
}

// TestUnknownExperimentListsNames pins the CLI contract: a typo'd
// -experiment must fail with a message naming the rejected input and
// listing every valid experiment id (plus "all"), never silently running
// nothing or defaulting.
func TestUnknownExperimentListsNames(t *testing.T) {
	_, err := selectExperiments("fig99")
	if err == nil {
		t.Fatal("unknown experiment accepted")
	}
	msg := err.Error()
	if !strings.Contains(msg, `"fig99"`) {
		t.Fatalf("error does not name the rejected input: %q", msg)
	}
	for _, e := range experiments {
		if !strings.Contains(msg, e.id) {
			t.Fatalf("error does not list experiment %q: %q", e.id, msg)
		}
	}
	if !strings.Contains(msg, "all") {
		t.Fatalf("error does not mention the 'all' pseudo-experiment: %q", msg)
	}
	// The new panel is registered and listed like the rest.
	found := false
	for _, e := range experiments {
		if e.id == "autopilot" {
			found = true
		}
	}
	if !found {
		t.Fatal("autopilot experiment not registered")
	}
	// A trailing comma produces an empty name, which is rejected too —
	// never a silent no-op run.
	if _, err := selectExperiments("fig3,"); err == nil {
		t.Fatal("trailing-comma experiment list accepted")
	}
}

func TestExperimentIDsUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, e := range experiments {
		if seen[e.id] {
			t.Fatalf("duplicate experiment id %q", e.id)
		}
		seen[e.id] = true
		if e.desc == "" || e.run == nil {
			t.Fatalf("experiment %q incomplete", e.id)
		}
	}
}

func TestEmitToDirectory(t *testing.T) {
	dir := t.TempDir()
	tbl := &harness.Table{ID: "demo", Title: "t", Header: []string{"a"}}
	tbl.AddRow("1")
	if err := emit(tbl, "tsv", dir); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "demo.tsv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "demo") || !strings.Contains(string(data), "1") {
		t.Fatalf("file contents: %q", data)
	}
}

func TestTableHelpers(t *testing.T) {
	res := &harness.SequenceResult{Table: &harness.Table{ID: "x"}}
	tables, err := seqTables(res, nil)
	if err != nil || len(tables) != 1 {
		t.Fatalf("seqTables: %v, %v", tables, err)
	}
	if _, err := seqTables(nil, os.ErrClosed); err == nil {
		t.Fatal("seqTables swallowed error")
	}
	if _, err := one(nil, os.ErrClosed); err == nil {
		t.Fatal("one swallowed error")
	}
	var buf bytes.Buffer
	if err := (&harness.Table{ID: "y", Header: []string{"h"}}).WriteTSV(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestEmitJSON(t *testing.T) {
	tbl := &harness.Table{ID: "demo", Title: "a demo", Header: []string{"x", "y"}}
	tbl.AddRow("1", "2.5")
	tbl.AddRow("3", "4.5")

	var buf bytes.Buffer
	if err := writeJSON(&buf, tbl); err != nil {
		t.Fatal(err)
	}
	var got struct {
		ID     string     `json:"id"`
		Title  string     `json:"title"`
		Header []string   `json:"header"`
		Rows   [][]string `json:"rows"`
	}
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatalf("not valid JSON: %v\n%s", err, buf.String())
	}
	if got.ID != "demo" || got.Title != "a demo" || len(got.Header) != 2 || len(got.Rows) != 2 {
		t.Fatalf("round trip: %+v", got)
	}
	if got.Rows[1][1] != "4.5" {
		t.Fatalf("cell: %+v", got.Rows)
	}

	// -out directory mode writes .json files.
	dir := t.TempDir()
	if err := emit(tbl, "json", dir); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "demo.json"))
	if err != nil {
		t.Fatal(err)
	}
	if !json.Valid(data) {
		t.Fatalf("directory emit not valid JSON: %q", data)
	}
}
