package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/asv-db/asv/internal/harness"
)

func TestSelectExperiments(t *testing.T) {
	all, err := selectExperiments("all")
	if err != nil || len(all) != len(experiments) {
		t.Fatalf("all: %d experiments, %v", len(all), err)
	}
	one, err := selectExperiments("fig3")
	if err != nil || len(one) != 1 || one[0].id != "fig3" {
		t.Fatalf("fig3: %v, %v", one, err)
	}
	multi, err := selectExperiments("fig6a,fig7b")
	if err != nil || len(multi) != 2 || multi[0].id != "fig6a" || multi[1].id != "fig7b" {
		t.Fatalf("multi: %v, %v", multi, err)
	}
	if _, err := selectExperiments("fig99"); err == nil {
		t.Fatal("unknown experiment accepted")
	}
	if _, err := selectExperiments("fig3,fig99"); err == nil {
		t.Fatal("partially unknown list accepted")
	}
}

func TestExperimentIDsUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, e := range experiments {
		if seen[e.id] {
			t.Fatalf("duplicate experiment id %q", e.id)
		}
		seen[e.id] = true
		if e.desc == "" || e.run == nil {
			t.Fatalf("experiment %q incomplete", e.id)
		}
	}
}

func TestEmitToDirectory(t *testing.T) {
	dir := t.TempDir()
	tbl := &harness.Table{ID: "demo", Title: "t", Header: []string{"a"}}
	tbl.AddRow("1")
	if err := emit(tbl, "tsv", dir); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "demo.tsv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "demo") || !strings.Contains(string(data), "1") {
		t.Fatalf("file contents: %q", data)
	}
}

func TestTableHelpers(t *testing.T) {
	res := &harness.SequenceResult{Table: &harness.Table{ID: "x"}}
	tables, err := seqTables(res, nil)
	if err != nil || len(tables) != 1 {
		t.Fatalf("seqTables: %v, %v", tables, err)
	}
	if _, err := seqTables(nil, os.ErrClosed); err == nil {
		t.Fatal("seqTables swallowed error")
	}
	if _, err := one(nil, os.ErrClosed); err == nil {
		t.Fatal("one swallowed error")
	}
	var buf bytes.Buffer
	if err := (&harness.Table{ID: "y", Header: []string{"h"}}).WriteTSV(&buf); err != nil {
		t.Fatal(err)
	}
}
