// Command asvlint machine-checks the engine's concurrency and resource
// invariants: five project-specific static analyzers (locked,
// immutable, paired, atomicfield, droppederr) driven by a
// zero-dependency loader built on go/parser, go/types and the export
// data `go list -export` leaves in the build cache.
//
// Usage:
//
//	go run ./cmd/asvlint ./...        # lint packages; exit 1 on findings
//	go run ./cmd/asvlint -selftest    # prove every analyzer still fires
//
// See internal/lint's package documentation for the analyzer catalogue
// and the //asv: directive grammar.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"

	"github.com/asv-db/asv/internal/lint"
)

func main() {
	selftest := flag.Bool("selftest", false, "run the analyzers over the seeded-violation corpus in internal/lint/testdata and verify each one fires")
	flag.Parse()

	if *selftest {
		if err := runSelfTest(); err != nil {
			fmt.Fprintln(os.Stderr, "asvlint:", err)
			os.Exit(1)
		}
		fmt.Println("asvlint selftest: all analyzers fire and the corpus matches")
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "asvlint:", err)
		os.Exit(2)
	}
	diags, err := lint.Run(cwd, patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "asvlint:", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "asvlint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

// runSelfTest locates the fixture corpus relative to the enclosing
// module root, so `go run ./cmd/asvlint -selftest` works from any
// directory inside the module.
func runSelfTest() error {
	out, err := exec.Command("go", "env", "GOMOD").Output()
	if err != nil {
		return fmt.Errorf("go env GOMOD: %v", err)
	}
	gomod := strings.TrimSpace(string(out))
	if gomod == "" || gomod == os.DevNull {
		return fmt.Errorf("selftest must run inside the module (go env GOMOD is %q)", gomod)
	}
	return lint.SelfTest(filepath.Join(filepath.Dir(gomod), "internal", "lint", "testdata", "src"))
}
