// Command asvd serves the adaptive storage view engine over HTTP: a
// zero-dependency JSON API with per-tenant catalogs and scatter-gather
// sharding, built entirely from the standard library.
//
// Usage:
//
//	asvd                         # serve on 127.0.0.1:7070
//	asvd -addr :8080             # all interfaces
//	asvd -max-queued 512         # tighter per-tenant update backpressure
//
// Tenants are namespaces, created lazily on first reference: every data
// route exists both as /t/{tenant}/... and without the prefix with the
// tenant named in the X-Asv-Tenant header. Each tenant owns a private
// engine instance (its own simulated kernel and address space), and each
// column can be split across N engine shards whose answers are
// scatter-gathered back into one result.
//
// A quick tour against a running daemon:
//
//	curl -s -XPOST localhost:7070/t/acme/columns \
//	  -d '{"name":"m","pages":4096,"shards":4,"fill":{"dist":"sine","seed":42,"lo":0,"hi":100000000}}'
//	curl -s -XPOST localhost:7070/t/acme/columns/m/query \
//	  -d '{"lo":1000000,"hi":2000000,"aggregate":true}'
//	curl -s localhost:7070/metrics
//
// SIGINT or SIGTERM shuts down gracefully: the listener stops accepting,
// every in-flight request drains (bounded by -shutdown-timeout), and the
// tenant catalog is closed — in that order, so no request ever observes
// a half-closed engine.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/asv-db/asv/internal/serve"
)

func main() {
	var (
		addr            = flag.String("addr", "127.0.0.1:7070", "listen address")
		maxBody         = flag.Int64("max-body", 0, "request body cap in bytes (default 1 MiB)")
		maxRows         = flag.Int("max-rows", 0, "row IDs returned per query response before truncation (default 4096)")
		maxBatch        = flag.Int("max-batch", 0, "writes accepted per update request (default 4096)")
		maxQueued       = flag.Int("max-queued", 0, "per-tenant queued updates before 429 backpressure (default 4096)")
		maxPages        = flag.Int("max-pages", 0, "pages per created column (default 1048576)")
		shutdownTimeout = flag.Duration("shutdown-timeout", 30*time.Second, "in-flight request drain budget on SIGINT/SIGTERM")
	)
	flag.Parse()

	srv := serve.NewServer(serve.ServerConfig{Limits: serve.Limits{
		MaxBodyBytes: *maxBody,
		MaxRows:      *maxRows,
		MaxBatch:     *maxBatch,
		MaxQueued:    *maxQueued,
		MaxPages:     *maxPages,
	}})
	l, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "asvd:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "asvd: serving on %s\n", l.Addr())

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(l) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-serveErr:
		// The listener died underneath us; nothing left to drain.
		fmt.Fprintln(os.Stderr, "asvd:", err)
		os.Exit(1)
	case s := <-sig:
		fmt.Fprintf(os.Stderr, "asvd: %s, draining (budget %s)\n", s, *shutdownTimeout)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *shutdownTimeout)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "asvd: shutdown:", err)
		os.Exit(1)
	}
	if err := <-serveErr; err != http.ErrServerClosed {
		fmt.Fprintln(os.Stderr, "asvd: serve:", err)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "asvd: drained clean")
}
