package asv

import (
	"time"

	"github.com/asv-db/asv/internal/autopilot"
)

// AutopilotConfig tunes a column's background maintenance subsystem; see
// WithAutopilot. The zero value of every field selects the documented
// default (negative values disable optional duties).
type AutopilotConfig = autopilot.Config

// AutopilotMetrics is a snapshot of an autopilot's cumulative counters.
type AutopilotMetrics = autopilot.Metrics

// FlushInfo describes one coalesced autopilot flush (OnFlush hook).
type FlushInfo = autopilot.FlushInfo

// MaintainReport describes one autopilot maintenance tick (OnMaintain
// hook).
type MaintainReport = autopilot.MaintainReport

// WithAutopilot enables the background maintenance subsystem on a column
// configuration: Update becomes fire-and-forget (applied and aligned
// within ap.MaxFlushLatency as part of a coalesced group commit), scan
// and alignment fan-out is chosen per operation by an EWMA cost model,
// and a maintenance ticker evicts cold views, rebuilds fragmented ones
// and pre-warms hot soft-TLBs. Call with no AutopilotConfig for the
// defaults (5ms latency bound, 256-write coalescing, 50ms maintenance):
//
//	col, _ := db.CreateColumn("hot", pages, asv.WithAutopilot(asv.DefaultConfig()))
//	col.Update(row, v)        // returns immediately
//	col.Sync()                // read-your-writes barrier when needed
func WithAutopilot(cfg Config, ap ...AutopilotConfig) Config {
	a := AutopilotConfig{}
	if len(ap) > 0 {
		a = ap[0]
	}
	cfg.Autopilot = &a
	return cfg
}

// Sync is the column's read-your-writes barrier: it applies every write
// accepted so far (draining the autopilot intake, when one runs) and
// realigns all partial views. Without an autopilot it is FlushUpdates.
func (c *Column) Sync() error {
	_, err := c.eng.Sync()
	return err
}

// QueuedUpdates returns the number of fire-and-forget writes accepted by
// Update but not yet applied (always 0 without an autopilot).
func (c *Column) QueuedUpdates() int { return c.eng.QueuedUpdates() }

// AutopilotMetrics returns the column's autopilot counters; ok is false
// when the column runs without an autopilot.
func (c *Column) AutopilotMetrics() (AutopilotMetrics, bool) {
	p := c.eng.Autopilot()
	if p == nil {
		return AutopilotMetrics{}, false
	}
	return p.Metrics(), true
}

// AutopilotFlushLatencies returns flush-latency samples (enqueue of the
// oldest coalesced write → flush complete), nil without an autopilot.
// Summarize with AutopilotPercentile.
//
// Deprecated: the autopilot no longer retains raw samples; the returned
// values are synthesized from the flush-latency histogram's quantiles
// and are quantized to log₂ bucket bounds. Read the histogram directly
// from Column.Telemetry's "autopilot_flush_latency_ns" instead.
func (c *Column) AutopilotFlushLatencies() []time.Duration {
	p := c.eng.Autopilot()
	if p == nil {
		return nil
	}
	return p.FlushLatencies()
}

// AutopilotPercentile returns the q-quantile (0..1) of a latency sample
// set by nearest rank.
//
// Deprecated: pair of AutopilotFlushLatencies. Prefer
// HistogramSnapshot.Quantile on the "autopilot_flush_latency_ns"
// histogram from Column.Telemetry.
func AutopilotPercentile(ds []time.Duration, q float64) time.Duration {
	return autopilot.Percentile(ds, q)
}
