package asv

import (
	"github.com/asv-db/asv/internal/core"
)

// This file is the options-based read surface: one QueryOpt entry point
// the historical Query/QueryParallel/QueryRows/QueryAggregate quartet
// now wraps, and the Snapshot handle for pinned-epoch reads.

// QueryOption configures a QueryOpt call; see Rows, Aggregate, Workers.
type QueryOption func(*core.QueryOptions)

// Rows requests materialization of the qualifying row IDs into
// QueryAnswer.Rows.
func Rows() QueryOption {
	return func(o *core.QueryOptions) { o.CollectRows = true }
}

// Aggregate requests count/sum/min/max over the qualifying values into
// QueryAnswer.Agg.
func Aggregate() QueryOption {
	return func(o *core.QueryOptions) { o.ComputeAggregate = true }
}

// Workers overrides the scan worker count for this query: a positive n
// selects exactly n page-sharded workers, n <= 0 selects GOMAXPROCS.
// Without this option the column's Config.Parallelism applies. Worker
// count never changes answers or adaptive side effects — shards reduce
// in page order with commutative aggregates.
func Workers(n int) QueryOption {
	return func(o *core.QueryOptions) { o.Workers, o.HasWorkers = n, true }
}

// QueryAnswer is the unified result of QueryOpt: the telemetry every
// query reports (embedded Result), plus the materializations the options
// asked for — Rows and Agg are nil unless requested.
type QueryAnswer = core.Answer

// QueryOpt answers the inclusive range query [lo, hi] according to the
// options, adapting the view set as a side product exactly like Query:
//
//	ans, err := col.QueryOpt(lo, hi, asv.Rows(), asv.Aggregate(), asv.Workers(4))
//	// ans.Count, ans.PagesScanned, ans.Rows, ans.Agg
//
// Reads are epoch-routed and lock-free: the query pins the currently
// published engine state and scans its immutable capture, so alignment,
// rebuilds and autopilot maintenance never stall readers. Updates
// buffered at entry are flushed first; a write racing in afterwards is
// serialized after this query.
func (c *Column) QueryOpt(lo, hi uint64, opts ...QueryOption) (QueryAnswer, error) {
	var o core.QueryOptions
	for _, opt := range opts {
		opt(&o)
	}
	return c.eng.QueryOpt(lo, hi, o)
}

// Snapshot pins the column's current engine epoch and returns a handle
// whose queries all observe exactly that instant — repeatable,
// never-blocking reads. See Column.Snapshot for the semantics.
type Snapshot struct {
	col  *Column
	snap *core.Snapshot
}

// Snapshot pins the current epoch. The snapshot reflects every write
// applied to the column before the call (pending updates are flushed
// first); writes and view maintenance after it are invisible through the
// handle, and its queries never block on writers, alignment or the
// autopilot. What a snapshot does NOT pin: engine statistics, the
// column's catalog registration, and adaptive side effects of other
// readers — it is a read view, not a transaction.
//
// Close the handle when done: an open snapshot keeps its epoch's views
// and page frames alive, and Column.Close blocks until every snapshot is
// closed.
func (c *Column) Snapshot() (*Snapshot, error) {
	s, err := c.eng.Snapshot() //asv:handoff the pin is owned by the returned handle; Snapshot.Close releases it
	if err != nil {
		return nil, err
	}
	return &Snapshot{col: c, snap: s}, nil
}

// Query answers [lo, hi] from the pinned epoch. Identical queries on one
// snapshot return identical answers regardless of concurrent writes.
func (s *Snapshot) Query(lo, hi uint64) (Result, error) {
	return s.snap.Query(lo, hi)
}

// QueryOpt answers [lo, hi] from the pinned epoch with options. Snapshot
// reads are pure: no candidate views are built and no view-set state
// changes, so the answer's CandidateBuilt is always false.
func (s *Snapshot) QueryOpt(lo, hi uint64, opts ...QueryOption) (QueryAnswer, error) {
	var o core.QueryOptions
	for _, opt := range opts {
		opt(&o)
	}
	return s.snap.QueryOpt(lo, hi, o)
}

// Views returns the number of partial views captured by the pinned epoch.
func (s *Snapshot) Views() int { return s.snap.Views() }

// Close releases the pin; idempotent.
func (s *Snapshot) Close() error { return s.snap.Close() }
