module github.com/asv-db/asv

go 1.24
